"""Imputer base class, shared matrix helpers, and the algorithm registry.

Conventions
-----------
* Input/output matrices have shape ``(n_series, length)`` — one row per time
  series, NaN marking missing values (matching
  :meth:`repro.timeseries.TimeSeriesDataset.to_matrix`).
* :meth:`BaseImputer.impute` validates, copies, dispatches to ``_impute``,
  and guarantees observed entries are returned untouched.
* :meth:`BaseImputer.impute_many` is the corpus-scale batch entry point:
  many *independent* imputation problems at once, shape-grouped into
  ``(B, n, L)`` stacks and dispatched to ``_impute_block`` (vectorized in
  the closed-form and SVD-family subclasses, a per-problem fallback loop
  everywhere else), with a parity contract of ``<= 1e-9`` against the
  scalar ``impute`` loop.
* Algorithms never mutate their input.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ImputationError, RegistryError, ValidationError
from repro.observability import get_metrics, get_tracer
from repro.observability.resources import get_accounting
from repro.observability.ledger import (
    current_repair_id,
    get_ledger,
    repair_quality_stats,
    repair_quality_stats_block,
)
from repro.resilience import (
    call_with_deadline,
    get_fault_injector,
    get_fault_policy,
)
from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.utils.timing import Timer


def interpolate_rows(X: np.ndarray) -> np.ndarray:
    """Fill NaNs in each row by linear interpolation with edge extension.

    Rows with no observed values are filled with the global observed mean
    (0.0 when the whole matrix is missing).
    """
    out = X.copy()
    observed_all = X[~np.isnan(X)]
    global_mean = float(observed_all.mean()) if observed_all.size else 0.0
    for i in range(out.shape[0]):
        row = out[i]
        mask = np.isnan(row)
        if not mask.any():
            continue
        obs_idx = np.flatnonzero(~mask)
        if obs_idx.size == 0:
            row[:] = global_mean
            continue
        row[mask] = np.interp(np.flatnonzero(mask), obs_idx, row[obs_idx])
    return out


def interpolate_rows_block(X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
    """Batched :func:`interpolate_rows` over a ``(B, n, L)`` problem stack.

    Every row of every problem is linearly interpolated with edge
    extension using the exact arithmetic of ``np.interp`` (segment slope
    first, then ``slope * (t - t_prev) + v_prev``), so the result matches
    the per-problem scalar reference bit-for-bit on interior gaps and
    edges.  Rows with no observed values take their *problem's* global
    observed mean, mirroring the scalar per-matrix fallback.

    Also accepts a 2-D ``(n, L)`` pair (treated as one problem).
    """
    X3 = np.asarray(X3)
    mask3 = np.asarray(mask3, dtype=bool)
    squeeze = X3.ndim == 2
    if squeeze:
        X3 = X3[None]
        mask3 = mask3[None]
    B, n, L = X3.shape
    rows = X3.reshape(B * n, L)
    miss = mask3.reshape(B * n, L)
    obs = ~miss
    out = rows.copy()
    if not miss.any():
        return out[0].reshape(n, L) if squeeze else out.reshape(B, n, L)
    idx = np.arange(L)
    # Index of the previous / next observed position per cell.
    prev = np.where(obs, idx[None, :], -1)
    np.maximum.accumulate(prev, axis=1, out=prev)
    nxt = np.where(obs, idx[None, :], L)
    nxt = np.flip(
        np.minimum.accumulate(np.flip(nxt, axis=1), axis=1), axis=1
    )
    has_prev = prev >= 0
    has_next = nxt < L
    # Gather the bracketing observed values (clip keeps the gather legal;
    # invalid positions are overwritten by the edge/fallback branches).
    v_prev = np.take_along_axis(rows, np.clip(prev, 0, L - 1), axis=1)
    v_next = np.take_along_axis(rows, np.clip(nxt, 0, L - 1), axis=1)
    interior = miss & has_prev & has_next
    span = (nxt - prev).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(interior, (v_next - v_prev) / span, 0.0)
    filled = slope * (idx[None, :] - prev) + v_prev
    out[interior] = filled[interior]
    lead = miss & ~has_prev & has_next
    out[lead] = v_next[lead]
    trail = miss & has_prev & ~has_next
    out[trail] = v_prev[trail]
    # Fully-missing rows: the scalar path fills the *problem's* observed
    # mean, computed over the same extraction order (row-major observed).
    dead = ~obs.any(axis=1)
    if dead.any():
        for b in np.flatnonzero(dead.reshape(B, n).any(axis=1)):
            observed_all = X3[b][~mask3[b]]
            fill = float(observed_all.mean()) if observed_all.size else 0.0
            block_rows = out.reshape(B, n, L)[b]
            block_rows[~(~mask3[b]).any(axis=1)] = fill
    return out[0:n].reshape(n, L) if squeeze else out.reshape(B, n, L)


class BaseImputer(ABC):
    """Abstract base class for all imputation algorithms.

    Subclasses set the class attribute ``name`` and implement
    :meth:`_impute`, which receives a matrix whose NaNs must be filled and
    the original missing mask, and returns a fully finite matrix of the same
    shape.  The public :meth:`impute` restores observed entries afterwards,
    so algorithms may overwrite them freely during internal iterations.
    """

    #: Registry key; subclasses must override.
    name: str = "base"

    def impute(self, matrix) -> np.ndarray:
        """Return a completed copy of ``matrix`` with NaNs replaced.

        Parameters
        ----------
        matrix:
            Array of shape (n_series, length) with NaN at missing positions.
        """
        X = np.asarray(matrix, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValidationError(f"matrix must be 1-D or 2-D, got shape {X.shape}")
        if np.isinf(X).any():
            raise ValidationError("matrix contains infinite values")
        mask = np.isnan(X)
        if not mask.any():
            return X.copy()
        if mask.all():
            raise ImputationError("matrix is entirely missing; nothing to learn from")
        tracer = get_tracer()
        metrics = get_metrics()
        # Resilience context: the ``imputer.impute`` fault site fires
        # first (chaos testing), and a process-level FaultPolicy may put
        # the algorithm under a wall-clock deadline.  With neither
        # installed this is two ``is None`` branches.
        injector = get_fault_injector()
        policy = get_fault_policy()
        deadline = policy.impute_deadline if policy is not None else None
        timer = Timer()
        with timer, tracer.span(
            f"impute.{self.name}",
            subsystem="imputation",
            algorithm=self.name,
            n_series=int(X.shape[0]),
            length=int(X.shape[1]),
            n_missing=int(mask.sum()),
        ):
            action = (
                injector.check("imputer.impute", self.name)
                if injector is not None
                else None
            )
            work = X.copy()
            if deadline is not None:
                completed = call_with_deadline(
                    lambda: self._impute(work, mask),
                    deadline,
                    label=f"imputer.impute:{self.name}",
                )
            else:
                completed = self._impute(work, mask)
            if action == "nan":
                # Poison the completion: the finite check below turns
                # this into a typed ImputationError, exercising the same
                # path a numerically broken algorithm would.
                completed = np.asarray(completed, dtype=float).copy()
                completed[mask] = np.nan
        metrics.counter(
            "repro_imputation_runs_total",
            "Imputation invocations per algorithm",
            labels={"algorithm": self.name},
        ).inc()
        metrics.histogram(
            "repro_imputation_seconds",
            "Per-invocation imputation wall seconds",
            labels={"algorithm": self.name},
        ).observe(timer.elapsed)
        completed = np.asarray(completed, dtype=float)
        if completed.shape != X.shape:
            raise ImputationError(
                f"{self.name}: imputer changed shape {X.shape} -> {completed.shape}"
            )
        if not np.isfinite(completed[mask]).all():
            raise ImputationError(
                f"{self.name}: imputer left non-finite values at missing positions"
            )
        # Observed entries are ground truth; never let an algorithm drift them.
        completed[~mask] = X[~mask]
        ledger = get_ledger()
        repair_id = current_repair_id()
        # Provenance is per *repair*: only invocations inside a
        # Recommendation.impute repair context emit rows, so labeling-time
        # benchmark races never flood the ledger.
        if ledger.enabled and repair_id is not None:
            hyperparams = {
                k: v
                for k, v in sorted(vars(self).items())
                if not k.startswith("_")
                and isinstance(v, (str, int, float, bool, type(None)))
            }
            ledger.record(
                "impute",
                {
                    "repair_id": repair_id,
                    "algorithm": self.name,
                    "hyperparameters": hyperparams,
                    "n_series": int(X.shape[0]),
                    "length": int(X.shape[1]),
                    "n_missing": int(mask.sum()),
                    "elapsed_s": timer.elapsed,
                    "quality": repair_quality_stats(completed, mask),
                },
            )
        return completed

    # -- corpus-scale batch path ----------------------------------------
    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        """Fill a ``(B, n, L)`` stack of *independent* problems.

        The default loops :meth:`_impute` per problem, so every imputer
        supports :meth:`impute_many` unchanged; vectorizing subclasses
        (Mean/Linear/kNN, the SVD family) override this with true block
        kernels.  Each problem gets a private copy, matching the scalar
        path's ``work = X.copy()``.  Unlike :meth:`_impute`, overrides
        must NOT mutate ``X3``/``mask3`` — the caller reuses them to
        restore observed entries afterwards.
        """
        return np.stack(
            [self._impute(X3[b].copy(), mask3[b]) for b in range(X3.shape[0])]
        )

    def impute_many(self, problems, *, repair_ids=None) -> list[np.ndarray]:
        """Impute many independent problems in one batched call.

        Parameters
        ----------
        problems:
            One of: a :class:`~repro.timeseries.batch.SeriesBank` (each
            raw row becomes a single-series problem), a 2-D array (each
            row an independent single-series problem), or a sequence
            whose elements are :class:`~repro.timeseries.TimeSeries`,
            1-D arrays, or 2-D ``(n, L)`` matrices.
        repair_ids:
            Optional per-problem repair ids for ledger correlation.
            When omitted, every row carries the thread's
            :func:`~repro.observability.ledger.current_repair_id`.

        Returns the completed matrices in input order — numerically
        within 1e-9 of ``[self.impute(p) for p in problems]``, with the
        same typed errors on invalid input.  Problems of equal shape are
        stacked into ``(B, n, L)`` blocks and dispatched to
        :meth:`_impute_block`; ledger rows (one per problem) are emitted
        through the batched
        :meth:`~repro.observability.ledger.RepairLedger.record_many`
        path so the provenance cost is amortized across the corpus.
        """
        matrices = self._coerce_problems(problems)
        n_problems = len(matrices)
        if repair_ids is not None and len(repair_ids) != n_problems:
            raise ValidationError(
                f"repair_ids has {len(repair_ids)} entries for {n_problems} problems"
            )
        results: list[np.ndarray | None] = [None] * n_problems
        # Validate every problem up front with the scalar path's checks
        # and shape-group the ones that actually need work.  Uniform-shape
        # corpora (the serving hot path) validate in one stacked pass; the
        # first offending problem in input order still wins, matching the
        # scalar loop's error ordering.
        groups: dict[tuple[int, int], list[int]] = {}
        masks: list[np.ndarray | None] = [None] * n_problems
        shapes = {X.shape for X in matrices}
        if len(shapes) == 1 and n_problems > 1:
            X3 = np.stack(matrices)
            inf_flags = np.isinf(X3).any(axis=(1, 2))
            mask3 = np.isnan(X3)
            all_nan = mask3.all(axis=(1, 2))
            bad = inf_flags | all_nan
            if bad.any():
                if inf_flags[int(np.argmax(bad))]:
                    raise ValidationError("matrix contains infinite values")
                raise ImputationError(
                    "matrix is entirely missing; nothing to learn from"
                )
            any_nan = mask3.any(axis=(1, 2))
            shape = matrices[0].shape
            for i in range(n_problems):
                if any_nan[i]:
                    masks[i] = mask3[i]
                    groups.setdefault(shape, []).append(i)
                else:
                    results[i] = matrices[i].copy()
            if bool(any_nan.all()):
                # Whole corpus needs work: reuse the validation stack
                # instead of re-stacking in the dispatch loop below.
                prestacked = (X3, mask3)
            else:
                prestacked = None
        else:
            prestacked = None
            for i, X in enumerate(matrices):
                if np.isinf(X).any():
                    raise ValidationError("matrix contains infinite values")
                mask = np.isnan(X)
                if not mask.any():
                    results[i] = X.copy()
                    continue
                if mask.all():
                    raise ImputationError(
                        "matrix is entirely missing; nothing to learn from"
                    )
                masks[i] = mask
                groups.setdefault(X.shape, []).append(i)
        if not groups:
            return [results[i] for i in range(n_problems)]
        tracer = get_tracer()
        metrics = get_metrics()
        injector = get_fault_injector()
        policy = get_fault_policy()
        deadline = policy.impute_deadline if policy is not None else None
        ledger = get_ledger()
        thread_repair_id = current_repair_id()
        n_imputed = sum(len(v) for v in groups.values())
        timer = Timer()
        with timer, tracer.span(
            f"impute_many.{self.name}",
            subsystem="imputation",
            algorithm=self.name,
            n_problems=int(n_problems),
            n_imputed=int(n_imputed),
            n_groups=int(len(groups)),
        ):
            action = (
                injector.check("imputer.impute", self.name)
                if injector is not None
                else None
            )
            ledger_rows: list[dict] = []
            hyperparams = None
            block_bytes = 0
            n_blocks = 0
            for shape, indices in groups.items():
                if prestacked is not None:
                    X3, mask3 = prestacked
                else:
                    X3 = np.stack([matrices[i] for i in indices])
                    mask3 = np.stack([masks[i] for i in indices])
                if deadline is not None:
                    completed3 = call_with_deadline(
                        lambda X3=X3, mask3=mask3: self._impute_block(X3, mask3),
                        deadline,
                        label=f"imputer.impute:{self.name}",
                    )
                else:
                    completed3 = self._impute_block(X3, mask3)
                completed3 = np.asarray(completed3, dtype=float)
                if completed3.shape != X3.shape:
                    raise ImputationError(
                        f"{self.name}: imputer changed shape "
                        f"{X3.shape} -> {completed3.shape}"
                    )
                if action == "nan":
                    completed3 = completed3.copy()
                    completed3[mask3] = np.nan
                if not np.isfinite(completed3[mask3]).all():
                    raise ImputationError(
                        f"{self.name}: imputer left non-finite values at "
                        "missing positions"
                    )
                # Observed entries are ground truth per problem.
                completed3[~mask3] = X3[~mask3]
                n_blocks += 1
                block_bytes += X3.nbytes + mask3.nbytes + completed3.nbytes
                for pos, i in enumerate(indices):
                    results[i] = completed3[pos]
                # Batched provenance: the quality stats for the whole
                # group in one vectorized pass, one row per problem.
                if ledger.enabled and (
                    repair_ids is not None or thread_repair_id is not None
                ):
                    if hyperparams is None:
                        hyperparams = {
                            k: v
                            for k, v in sorted(vars(self).items())
                            if not k.startswith("_")
                            and isinstance(v, (str, int, float, bool, type(None)))
                        }
                    quality = repair_quality_stats_block(completed3, mask3)
                    for pos, i in enumerate(indices):
                        rid = (
                            repair_ids[i]
                            if repair_ids is not None
                            else thread_repair_id
                        )
                        if rid is None:
                            continue
                        ledger_rows.append(
                            {
                                "repair_id": rid,
                                "algorithm": self.name,
                                "hyperparameters": hyperparams,
                                "n_series": int(shape[0]),
                                "length": int(shape[1]),
                                "n_missing": int(mask3[pos].sum()),
                                "elapsed_s": None,  # filled after timing
                                "quality": quality[pos],
                                "batched": True,
                            }
                        )
        if ledger_rows:
            per_problem_s = timer.elapsed / max(n_imputed, 1)
            for row in ledger_rows:
                row["elapsed_s"] = per_problem_s
            ledger.record_many("impute", ledger_rows)
        get_accounting().record_kernel(
            f"impute_block.{self.name}",
            bytes_moved=block_bytes,
            chunks=n_blocks,
            scratch_allocations=n_blocks,
        )
        metrics.counter(
            "repro_imputation_runs_total",
            "Imputation invocations per algorithm",
            labels={"algorithm": self.name},
        ).inc(n_imputed)
        metrics.histogram(
            "repro_imputation_seconds",
            "Per-invocation imputation wall seconds",
            labels={"algorithm": self.name},
        ).observe(timer.elapsed)
        return [results[i] for i in range(n_problems)]

    @staticmethod
    def _coerce_problems(problems) -> list[np.ndarray]:
        """Normalize ``impute_many`` input to a list of 2-D float matrices."""
        from repro.timeseries.batch import SeriesBank

        if isinstance(problems, SeriesBank):
            items = [problems.raw[i] for i in range(problems.raw.shape[0])]
        elif isinstance(problems, np.ndarray):
            if problems.ndim == 1:
                items = [problems]
            elif problems.ndim == 2:
                items = list(problems)
            elif problems.ndim == 3:
                items = list(problems)
            else:
                raise ValidationError(
                    f"problems array must be 1-D..3-D, got shape {problems.shape}"
                )
        else:
            items = list(problems)
        matrices = []
        for item in items:
            if isinstance(item, TimeSeries):
                X = np.asarray(item.values, dtype=float)
            else:
                X = np.asarray(item, dtype=float)
            if X.ndim == 1:
                X = X[None, :]
            if X.ndim != 2:
                raise ValidationError(
                    f"each problem must be 1-D or 2-D, got shape {X.shape}"
                )
            matrices.append(X)
        return matrices

    def impute_series_many(
        self, series_list, *, repair_ids=None
    ) -> list[TimeSeries]:
        """Batched :meth:`impute_series` over a corpus of univariate series."""
        series_list = list(series_list)
        completed = self.impute_many(
            [s.values[None, :] for s in series_list], repair_ids=repair_ids
        )
        return [
            s.with_values(c[0]) for s, c in zip(series_list, completed)
        ]

    def impute_series(self, series: TimeSeries) -> TimeSeries:
        """Impute a single univariate series."""
        completed = self.impute(series.values[None, :])[0]
        return series.with_values(completed)

    def impute_dataset(self, dataset: TimeSeriesDataset) -> TimeSeriesDataset:
        """Jointly impute all series of an equal-length dataset."""
        completed = self.impute(dataset.to_matrix())
        return TimeSeriesDataset(
            [s.with_values(row) for s, row in zip(dataset.series, completed)],
            name=dataset.name,
            category=dataset.category,
        )

    def _record_convergence(self, n_iterations: int, converged: bool) -> None:
        """Report an iterative algorithm's loop outcome to the telemetry.

        Iterative imputers (CDRec, SVDImp, SoftImpute, ...) call this at
        the end of ``_impute`` so the metrics registry accumulates
        per-algorithm iteration counts and convergence rates — free
        no-ops unless a registry is installed.
        """
        metrics = get_metrics()
        labels = {"algorithm": self.name}
        metrics.counter(
            "repro_imputation_iterations_total",
            "Inner-loop iterations spent by iterative imputers",
            labels=labels,
        ).inc(max(0, int(n_iterations)))
        metrics.counter(
            "repro_imputation_convergence_total",
            "Iterative-imputer runs by convergence outcome",
            labels={**labels, "converged": str(bool(converged)).lower()},
        ).inc()

    @abstractmethod
    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Fill NaNs in ``X`` (a private copy) and return the result."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


IMPUTER_REGISTRY: dict[str, type[BaseImputer]] = {}


def register_imputer(cls: type[BaseImputer]) -> type[BaseImputer]:
    """Class decorator adding an imputer to the global registry by name."""
    key = cls.name
    if not key or key == "base":
        raise RegistryError(f"imputer class {cls.__name__} must define a unique name")
    if key in IMPUTER_REGISTRY and IMPUTER_REGISTRY[key] is not cls:
        raise RegistryError(f"imputer name {key!r} already registered")
    IMPUTER_REGISTRY[key] = cls
    return cls


def available_imputers() -> list[str]:
    """Sorted list of registered imputer names."""
    return sorted(IMPUTER_REGISTRY)


def get_imputer(name: str, **params) -> BaseImputer:
    """Instantiate a registered imputer by name with keyword parameters."""
    try:
        cls = IMPUTER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown imputer {name!r}; available: {available_imputers()}"
        ) from None
    return cls(**params)
