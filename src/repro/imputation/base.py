"""Imputer base class, shared matrix helpers, and the algorithm registry.

Conventions
-----------
* Input/output matrices have shape ``(n_series, length)`` — one row per time
  series, NaN marking missing values (matching
  :meth:`repro.timeseries.TimeSeriesDataset.to_matrix`).
* :meth:`BaseImputer.impute` validates, copies, dispatches to ``_impute``,
  and guarantees observed entries are returned untouched.
* Algorithms never mutate their input.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ImputationError, RegistryError, ValidationError
from repro.observability import get_metrics, get_tracer
from repro.observability.ledger import (
    current_repair_id,
    get_ledger,
    repair_quality_stats,
)
from repro.resilience import (
    call_with_deadline,
    get_fault_injector,
    get_fault_policy,
)
from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.utils.timing import Timer


def interpolate_rows(X: np.ndarray) -> np.ndarray:
    """Fill NaNs in each row by linear interpolation with edge extension.

    Rows with no observed values are filled with the global observed mean
    (0.0 when the whole matrix is missing).
    """
    out = X.copy()
    observed_all = X[~np.isnan(X)]
    global_mean = float(observed_all.mean()) if observed_all.size else 0.0
    for i in range(out.shape[0]):
        row = out[i]
        mask = np.isnan(row)
        if not mask.any():
            continue
        obs_idx = np.flatnonzero(~mask)
        if obs_idx.size == 0:
            row[:] = global_mean
            continue
        row[mask] = np.interp(np.flatnonzero(mask), obs_idx, row[obs_idx])
    return out


class BaseImputer(ABC):
    """Abstract base class for all imputation algorithms.

    Subclasses set the class attribute ``name`` and implement
    :meth:`_impute`, which receives a matrix whose NaNs must be filled and
    the original missing mask, and returns a fully finite matrix of the same
    shape.  The public :meth:`impute` restores observed entries afterwards,
    so algorithms may overwrite them freely during internal iterations.
    """

    #: Registry key; subclasses must override.
    name: str = "base"

    def impute(self, matrix) -> np.ndarray:
        """Return a completed copy of ``matrix`` with NaNs replaced.

        Parameters
        ----------
        matrix:
            Array of shape (n_series, length) with NaN at missing positions.
        """
        X = np.asarray(matrix, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValidationError(f"matrix must be 1-D or 2-D, got shape {X.shape}")
        if np.isinf(X).any():
            raise ValidationError("matrix contains infinite values")
        mask = np.isnan(X)
        if not mask.any():
            return X.copy()
        if mask.all():
            raise ImputationError("matrix is entirely missing; nothing to learn from")
        tracer = get_tracer()
        metrics = get_metrics()
        # Resilience context: the ``imputer.impute`` fault site fires
        # first (chaos testing), and a process-level FaultPolicy may put
        # the algorithm under a wall-clock deadline.  With neither
        # installed this is two ``is None`` branches.
        injector = get_fault_injector()
        policy = get_fault_policy()
        deadline = policy.impute_deadline if policy is not None else None
        timer = Timer()
        with timer, tracer.span(
            f"impute.{self.name}",
            subsystem="imputation",
            algorithm=self.name,
            n_series=int(X.shape[0]),
            length=int(X.shape[1]),
            n_missing=int(mask.sum()),
        ):
            action = (
                injector.check("imputer.impute", self.name)
                if injector is not None
                else None
            )
            work = X.copy()
            if deadline is not None:
                completed = call_with_deadline(
                    lambda: self._impute(work, mask),
                    deadline,
                    label=f"imputer.impute:{self.name}",
                )
            else:
                completed = self._impute(work, mask)
            if action == "nan":
                # Poison the completion: the finite check below turns
                # this into a typed ImputationError, exercising the same
                # path a numerically broken algorithm would.
                completed = np.asarray(completed, dtype=float).copy()
                completed[mask] = np.nan
        metrics.counter(
            "repro_imputation_runs_total",
            "Imputation invocations per algorithm",
            labels={"algorithm": self.name},
        ).inc()
        metrics.histogram(
            "repro_imputation_seconds",
            "Per-invocation imputation wall seconds",
            labels={"algorithm": self.name},
        ).observe(timer.elapsed)
        completed = np.asarray(completed, dtype=float)
        if completed.shape != X.shape:
            raise ImputationError(
                f"{self.name}: imputer changed shape {X.shape} -> {completed.shape}"
            )
        if not np.isfinite(completed[mask]).all():
            raise ImputationError(
                f"{self.name}: imputer left non-finite values at missing positions"
            )
        # Observed entries are ground truth; never let an algorithm drift them.
        completed[~mask] = X[~mask]
        ledger = get_ledger()
        repair_id = current_repair_id()
        # Provenance is per *repair*: only invocations inside a
        # Recommendation.impute repair context emit rows, so labeling-time
        # benchmark races never flood the ledger.
        if ledger.enabled and repair_id is not None:
            hyperparams = {
                k: v
                for k, v in sorted(vars(self).items())
                if not k.startswith("_")
                and isinstance(v, (str, int, float, bool, type(None)))
            }
            ledger.record(
                "impute",
                {
                    "repair_id": repair_id,
                    "algorithm": self.name,
                    "hyperparameters": hyperparams,
                    "n_series": int(X.shape[0]),
                    "length": int(X.shape[1]),
                    "n_missing": int(mask.sum()),
                    "elapsed_s": timer.elapsed,
                    "quality": repair_quality_stats(completed, mask),
                },
            )
        return completed

    def impute_series(self, series: TimeSeries) -> TimeSeries:
        """Impute a single univariate series."""
        completed = self.impute(series.values[None, :])[0]
        return series.with_values(completed)

    def impute_dataset(self, dataset: TimeSeriesDataset) -> TimeSeriesDataset:
        """Jointly impute all series of an equal-length dataset."""
        completed = self.impute(dataset.to_matrix())
        return TimeSeriesDataset(
            [s.with_values(row) for s, row in zip(dataset.series, completed)],
            name=dataset.name,
            category=dataset.category,
        )

    def _record_convergence(self, n_iterations: int, converged: bool) -> None:
        """Report an iterative algorithm's loop outcome to the telemetry.

        Iterative imputers (CDRec, SVDImp, SoftImpute, ...) call this at
        the end of ``_impute`` so the metrics registry accumulates
        per-algorithm iteration counts and convergence rates — free
        no-ops unless a registry is installed.
        """
        metrics = get_metrics()
        labels = {"algorithm": self.name}
        metrics.counter(
            "repro_imputation_iterations_total",
            "Inner-loop iterations spent by iterative imputers",
            labels=labels,
        ).inc(max(0, int(n_iterations)))
        metrics.counter(
            "repro_imputation_convergence_total",
            "Iterative-imputer runs by convergence outcome",
            labels={**labels, "converged": str(bool(converged)).lower()},
        ).inc()

    @abstractmethod
    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Fill NaNs in ``X`` (a private copy) and return the result."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


IMPUTER_REGISTRY: dict[str, type[BaseImputer]] = {}


def register_imputer(cls: type[BaseImputer]) -> type[BaseImputer]:
    """Class decorator adding an imputer to the global registry by name."""
    key = cls.name
    if not key or key == "base":
        raise RegistryError(f"imputer class {cls.__name__} must define a unique name")
    if key in IMPUTER_REGISTRY and IMPUTER_REGISTRY[key] is not cls:
        raise RegistryError(f"imputer name {key!r} already registered")
    IMPUTER_REGISTRY[key] = cls
    return cls


def available_imputers() -> list[str]:
    """Sorted list of registered imputer names."""
    return sorted(IMPUTER_REGISTRY)


def get_imputer(name: str, **params) -> BaseImputer:
    """Instantiate a registered imputer by name with keyword parameters."""
    try:
        cls = IMPUTER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown imputer {name!r}; available: {available_imputers()}"
        ) from None
    return cls(**params)
