"""IIM: learning individual models for imputation (Zhang et al., ICDE'19).

IIM fits, for each faulty series, an *individual* regression model over its
nearest-neighbour series: the candidate value for each missing cell is a
locally learned linear combination of the neighbours' values at that time
step, trained on the commonly observed region.  Distinct from global matrix
methods, each series gets its own model ("individual").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer


@register_imputer
class IIMImputer(BaseImputer):
    """Individual per-series regression imputation.

    Parameters
    ----------
    n_neighbours:
        Number of donor series in each individual model.
    alpha:
        Ridge penalty of the per-series regression.
    """

    name = "iim"

    def __init__(self, n_neighbours: int = 3, alpha: float = 0.1):
        if n_neighbours < 1:
            raise ValidationError(f"n_neighbours must be >= 1, got {n_neighbours}")
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}")
        self.n_neighbours = int(n_neighbours)
        self.alpha = float(alpha)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n, m = X.shape
        filled = interpolate_rows(X)
        if n < 2:
            return filled
        out = filled.copy()
        corr = np.corrcoef(filled)
        corr = np.nan_to_num(corr, nan=0.0)
        np.fill_diagonal(corr, -np.inf)
        for i in range(n):
            row_mask = mask[i]
            if not row_mask.any():
                continue
            donors = np.argsort(np.abs(corr[i]))[::-1][: self.n_neighbours]
            # Train on positions where the target and all donors are observed.
            train = ~row_mask
            for d in donors:
                train &= ~mask[d]
            if train.sum() < self.n_neighbours + 2:
                continue  # not enough common support; keep interpolation
            D_train = filled[donors][:, train].T
            D_train = np.hstack([D_train, np.ones((D_train.shape[0], 1))])
            y_train = X[i, train]
            A = D_train.T @ D_train + self.alpha * np.eye(D_train.shape[1])
            coef = np.linalg.solve(A, D_train.T @ y_train)
            D_miss = filled[donors][:, row_mask].T
            D_miss = np.hstack([D_miss, np.ones((D_miss.shape[0], 1))])
            out[i, row_mask] = D_miss @ coef
        return out
