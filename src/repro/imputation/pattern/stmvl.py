"""ST-MVL: spatio-temporal multi-view learning (Yi et al., IJCAI'16).

ST-MVL blends four views of a missing entry:

* **UCF** (user-based collaborative filtering): values of correlated *other
  series* at the same time step, similarity-weighted;
* **ICF** (item-based): values of *nearby time steps* of the same series,
  distance-weighted (inverse-distance smoothing);
* **SES** (spatial empirical statistic): the cross-series mean at that step;
* **TES** (temporal empirical statistic): the series' own mean.

The views are combined by a ridge regression fit on observed entries where
all views are computable ("multi-view learning").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer


@register_imputer
class STMVLImputer(BaseImputer):
    """Spatio-temporal multi-view imputation.

    Parameters
    ----------
    temporal_window:
        Half-width of the temporal smoothing window for the ICF view.
    n_neighbours:
        Number of correlated series used by the UCF view.
    alpha:
        Ridge penalty of the view-blending regression.
    """

    name = "stmvl"

    def __init__(
        self, temporal_window: int = 5, n_neighbours: int = 3, alpha: float = 1.0
    ):
        if temporal_window < 1:
            raise ValidationError(
                f"temporal_window must be >= 1, got {temporal_window}"
            )
        if n_neighbours < 1:
            raise ValidationError(f"n_neighbours must be >= 1, got {n_neighbours}")
        self.temporal_window = int(temporal_window)
        self.n_neighbours = int(n_neighbours)
        self.alpha = float(alpha)

    # ------------------------------------------------------------------
    def _views(self, filled: np.ndarray, X: np.ndarray, mask: np.ndarray):
        """Compute the four view matrices over the whole grid."""
        n, m = filled.shape
        # ICF: inverse-distance weighted temporal smoothing of own series.
        icf = np.empty_like(filled)
        w = self.temporal_window
        offsets = np.abs(np.arange(-w, w + 1, dtype=float))
        offsets[w] = np.inf  # exclude self (zero weight)
        weights = 1.0 / offsets
        for t in range(m):
            lo, hi = max(0, t - w), min(m, t + w + 1)
            seg = filled[:, lo:hi]
            wseg = weights[w - (t - lo) : w + (hi - t)]
            denom = wseg.sum()
            icf[:, t] = seg @ wseg / denom if denom > 0 else filled[:, t]
        # UCF: similarity-weighted average over most-correlated other series.
        corr = np.corrcoef(filled) if n > 1 else np.ones((1, 1))
        corr = np.nan_to_num(corr, nan=0.0)
        np.fill_diagonal(corr, -np.inf)
        ucf = np.empty_like(filled)
        for i in range(n):
            if n == 1:
                ucf[i] = filled[i]
                continue
            order = np.argsort(corr[i])[::-1][: self.n_neighbours]
            sims = np.clip(corr[i, order], 0.0, None)
            if sims.sum() <= 0:
                ucf[i] = filled[order].mean(axis=0)
            else:
                ucf[i] = (sims[:, None] * filled[order]).sum(axis=0) / sims.sum()
        # SES: per-time-step cross-series mean; TES: per-series mean.
        ses = np.tile(filled.mean(axis=0), (n, 1))
        tes = np.tile(filled.mean(axis=1)[:, None], (1, m))
        return ucf, icf, ses, tes

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        filled = interpolate_rows(X)
        ucf, icf, ses, tes = self._views(filled, X, mask)
        observed = ~mask
        design = np.stack(
            [ucf[observed], icf[observed], ses[observed], tes[observed]], axis=1
        )
        target = X[observed]
        # Ridge blend fit on observed entries (with intercept).
        design = np.hstack([design, np.ones((design.shape[0], 1))])
        A = design.T @ design + self.alpha * np.eye(design.shape[1])
        b = design.T @ target
        coef = np.linalg.solve(A, b)
        full_design = np.stack(
            [ucf[mask], icf[mask], ses[mask], tes[mask], np.ones(mask.sum())], axis=1
        )
        out = X.copy()
        out[mask] = full_design @ coef
        return out
