"""Pattern- and regression-based imputers."""

from repro.imputation.pattern.tkcm import TKCMImputer
from repro.imputation.pattern.stmvl import STMVLImputer
from repro.imputation.pattern.iim import IIMImputer

__all__ = ["TKCMImputer", "STMVLImputer", "IIMImputer"]
