"""TKCM: top-k case matching for pattern-determining series (Wellenzohn et al.).

For each missing block, TKCM takes the *anchor window* immediately preceding
the gap, searches the series history for the ``k`` most similar windows
(smallest z-normalized Euclidean distance), and imputes the gap with the
average of the values that followed those historical matches.  This exploits
recurring patterns (periodic load curves, heartbeats) that matrix methods
blur.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer


def _znorm(w: np.ndarray) -> np.ndarray:
    std = w.std()
    if std == 0:
        return np.zeros_like(w)
    return (w - w.mean()) / std


@register_imputer
class TKCMImputer(BaseImputer):
    """Top-k case matching.

    Parameters
    ----------
    k:
        Number of historical matches averaged.
    window:
        Anchor window length (None = auto: 2x the gap length, capped).
    """

    name = "tkcm"

    def __init__(self, k: int = 3, window: int | None = None):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if window is not None and window < 2:
            raise ValidationError(f"window must be >= 2, got {window}")
        self.k = int(k)
        self.window = window

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        out = interpolate_rows(X)
        for i in range(X.shape[0]):
            row_mask = mask[i]
            if not row_mask.any():
                continue
            self._impute_row(X[i], row_mask, out, i)
        return out

    def _impute_row(
        self, row: np.ndarray, row_mask: np.ndarray, out: np.ndarray, i: int
    ) -> None:
        n = row.shape[0]
        # Work gap by gap.
        blocks: list[tuple[int, int]] = []
        start = None
        for t, miss in enumerate(row_mask):
            if miss and start is None:
                start = t
            elif not miss and start is not None:
                blocks.append((start, t - start))
                start = None
        if start is not None:
            blocks.append((start, n - start))
        # The reference history is the interpolated row: matching still works
        # across other gaps without NaN bookkeeping.
        history = out[i]
        for gap_start, gap_len in blocks:
            window = self.window or min(max(4, 2 * gap_len), max(4, n // 4))
            anchor_start = gap_start - window
            if anchor_start < 0:
                continue  # no anchor before the gap; keep interpolation
            anchor = _znorm(history[anchor_start:gap_start])
            candidates: list[tuple[float, int]] = []
            for pos in range(0, n - window - gap_len + 1):
                # Skip candidates whose window or continuation overlaps the gap
                # or contains originally missing values.
                span = slice(pos, pos + window + gap_len)
                if pos <= gap_start < pos + window + gap_len:
                    continue
                if row_mask[span].any():
                    continue
                cand = _znorm(history[pos : pos + window])
                dist = float(np.linalg.norm(anchor - cand))
                candidates.append((dist, pos))
            if not candidates:
                continue
            candidates.sort(key=lambda c: c[0])
            # Quality guard: a z-normalized window of length w has norm
            # ~sqrt(w); if even the best match is far, the signal has no
            # repeating pattern and interpolation is safer than a bad graft.
            if candidates[0][0] > 0.5 * np.sqrt(window):
                continue
            top = candidates[: self.k]
            continuations = []
            anchor_raw = history[anchor_start:gap_start]
            for _, pos in top:
                cand_raw = history[pos : pos + window]
                cont = history[pos + window : pos + window + gap_len]
                # Rescale the continuation from the candidate's local scale
                # to the anchor's local scale.
                c_std = cand_raw.std()
                scale = (anchor_raw.std() / c_std) if c_std > 0 else 1.0
                shift = anchor_raw.mean() - scale * cand_raw.mean()
                continuations.append(scale * cont + shift)
            out[i, gap_start : gap_start + gap_len] = np.mean(continuations, axis=0)
