"""Dynamical-system imputers (linear dynamical systems / Kalman smoothing)."""

from repro.imputation.dynamical.dynammo import DynaMMoImputer

__all__ = ["DynaMMoImputer"]
