"""DynaMMo: mining co-evolving sequences with missing values (Li et al., KDD'09).

DynaMMo models the multivariate series as a linear dynamical system

    z_{t+1} = A z_t + w,   x_t = C z_t + v

learned with EM: the E-step runs Kalman filtering + RTS smoothing over the
current estimate, the M-step re-fits (A, C, noise covariances), and the
missing observations are replaced by their smoothed means ``C E[z_t]``.
This captures temporal *dynamics* explicitly, which low-rank methods do not.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer
from repro.utils.rng import ensure_rng


def _kalman_smooth(Y, A, C, Q, R, mu0, V0):
    """Kalman filter + RTS smoother; returns smoothed means/covs and pair covs."""
    h, length = A.shape[0], Y.shape[1]
    mu_pred = np.zeros((length, h))
    V_pred = np.zeros((length, h, h))
    mu_filt = np.zeros((length, h))
    V_filt = np.zeros((length, h, h))
    eye_h = np.eye(h)
    for t in range(length):
        if t == 0:
            mu_pred[t] = mu0
            V_pred[t] = V0
        else:
            mu_pred[t] = A @ mu_filt[t - 1]
            V_pred[t] = A @ V_filt[t - 1] @ A.T + Q
        S = C @ V_pred[t] @ C.T + R
        K = V_pred[t] @ C.T @ np.linalg.solve(S, np.eye(S.shape[0]))
        innov = Y[:, t] - C @ mu_pred[t]
        mu_filt[t] = mu_pred[t] + K @ innov
        V_filt[t] = (eye_h - K @ C) @ V_pred[t]
    mu_smooth = np.zeros_like(mu_filt)
    V_smooth = np.zeros_like(V_filt)
    V_pair = np.zeros((length - 1, h, h)) if length > 1 else np.zeros((0, h, h))
    mu_smooth[-1] = mu_filt[-1]
    V_smooth[-1] = V_filt[-1]
    for t in range(length - 2, -1, -1):
        J = V_filt[t] @ A.T @ np.linalg.solve(V_pred[t + 1], eye_h)
        mu_smooth[t] = mu_filt[t] + J @ (mu_smooth[t + 1] - mu_pred[t + 1])
        V_smooth[t] = V_filt[t] + J @ (V_smooth[t + 1] - V_pred[t + 1]) @ J.T
        V_pair[t] = J @ V_smooth[t + 1]
    return mu_smooth, V_smooth, V_pair


@register_imputer
class DynaMMoImputer(BaseImputer):
    """EM-trained linear dynamical system imputation.

    Parameters
    ----------
    hidden_dim:
        Latent state dimension (None = auto: ~n/2, capped at 8).
    max_iter:
        EM iterations.
    random_state:
        Seed for parameter initialization.
    """

    name = "dynammo"

    def __init__(
        self,
        hidden_dim: int | None = None,
        max_iter: int = 15,
        random_state: int | None = 0,
    ):
        if hidden_dim is not None and hidden_dim < 1:
            raise ValidationError(f"hidden_dim must be >= 1, got {hidden_dim}")
        self.hidden_dim = hidden_dim
        self.max_iter = int(max_iter)
        self.random_state = random_state

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n, length = X.shape
        rng = ensure_rng(self.random_state)
        h = self.hidden_dim if self.hidden_dim is not None else min(8, max(1, n // 2))
        h = min(h, n)
        Y = interpolate_rows(X)
        # Standardize rows for numerically stable EM; remember the transform.
        row_mean = Y.mean(axis=1, keepdims=True)
        row_std = Y.std(axis=1, keepdims=True)
        row_std[row_std == 0] = 1.0
        Yz = (Y - row_mean) / row_std
        A = np.eye(h) + 0.01 * rng.normal(size=(h, h))
        C = rng.normal(size=(n, h)) * 0.5
        Q = np.eye(h)
        R = np.eye(n)
        mu0 = np.zeros(h)
        V0 = np.eye(h)
        eye_h = np.eye(h)
        for _ in range(self.max_iter):
            mu, V, V_pair = _kalman_smooth(Yz, A, C, Q, R, mu0, V0)
            # Sufficient statistics.
            Ezz = V.sum(axis=0) + mu.T @ mu
            Ezz_head = V[:-1].sum(axis=0) + mu[:-1].T @ mu[:-1]
            Ezz_tail = V[1:].sum(axis=0) + mu[1:].T @ mu[1:]
            Ezz_pair = V_pair.sum(axis=0) + mu[1:].T @ mu[:-1]
            # M-step.
            A = Ezz_pair @ np.linalg.solve(Ezz_head + 1e-8 * eye_h, eye_h)
            C = (Yz @ mu) @ np.linalg.solve(Ezz + 1e-8 * eye_h, eye_h)
            resid_q = (Ezz_tail - A @ Ezz_pair.T) / max(length - 1, 1)
            Q = (resid_q + resid_q.T) / 2 + 1e-6 * eye_h
            recon = C @ mu.T
            resid_r = Yz - recon
            R = np.diag(np.maximum((resid_r**2).mean(axis=1), 1e-6))
            mu0 = mu[0]
            V0 = V[0] + 1e-6 * eye_h
            # Update the working estimate at missing positions only.
            Yz[mask] = recon[mask]
        out = X.copy()
        reconstructed = Yz * row_std + row_mean
        if not np.isfinite(reconstructed).all():
            return interpolate_rows(X)
        out[mask] = reconstructed[mask]
        return out
