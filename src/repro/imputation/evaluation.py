"""Imputation quality metrics and algorithm ranking helpers.

These power the labeling stage: given a complete ground-truth matrix and an
injected missing mask, every candidate algorithm is scored by RMSE on the
hidden entries; the winner becomes the training label.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer


def _check_pair(truth, imputed, mask) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    truth = np.asarray(truth, dtype=float)
    imputed = np.asarray(imputed, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    if truth.shape != imputed.shape or truth.shape != mask.shape:
        raise ValidationError(
            f"shape mismatch: truth {truth.shape}, imputed {imputed.shape}, "
            f"mask {mask.shape}"
        )
    if not mask.any():
        raise ValidationError("mask selects no entries to evaluate")
    return truth, imputed, mask


def imputation_rmse(truth, imputed, mask) -> float:
    """Root-mean-squared error on the masked (injected-missing) entries."""
    truth, imputed, mask = _check_pair(truth, imputed, mask)
    diff = truth[mask] - imputed[mask]
    return float(np.sqrt((diff**2).mean()))


def imputation_mae(truth, imputed, mask) -> float:
    """Mean absolute error on the masked entries."""
    truth, imputed, mask = _check_pair(truth, imputed, mask)
    return float(np.abs(truth[mask] - imputed[mask]).mean())


def evaluate_imputer(
    imputer: BaseImputer, truth, mask, metric: str = "rmse"
) -> float:
    """Inject ``mask`` into ``truth``, run ``imputer``, and score it.

    Returns ``inf`` if the algorithm raises — a failing algorithm simply
    loses the race rather than aborting labeling.
    """
    truth = np.asarray(truth, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    faulty = truth.copy()
    faulty[mask] = np.nan
    try:
        completed = imputer.impute(faulty)
    except Exception:
        return float("inf")
    if metric == "rmse":
        return imputation_rmse(truth, completed, mask)
    if metric == "mae":
        return imputation_mae(truth, completed, mask)
    raise ValidationError(f"unknown metric {metric!r}; use 'rmse' or 'mae'")


def rank_imputers(
    imputers: list[BaseImputer], truth, mask, metric: str = "rmse"
) -> list[tuple[str, float]]:
    """Score each imputer on the same injected mask; return sorted (name, score).

    Lower is better; ties break by name for determinism.
    """
    if not imputers:
        raise ValidationError("imputers list is empty")
    scores = [
        (imp.name, evaluate_imputer(imp, truth, mask, metric=metric))
        for imp in imputers
    ]
    scores.sort(key=lambda item: (item[1], item[0]))
    return scores
