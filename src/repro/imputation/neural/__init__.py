"""Learned (neural) imputers implemented in pure numpy."""

from repro.imputation.neural.mlp_imputer import MLPImputer

__all__ = ["MLPImputer"]
