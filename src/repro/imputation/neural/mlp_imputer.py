"""MLP window imputer — the numpy stand-in for the deep learners.

The paper's suite includes deep imputers (BRITS, DeepMVI, MPIN).  Offline we
occupy the same niche — a *learned, nonlinear* model trained on the series'
own windows — with a compact multilayer perceptron:

* training pairs are (context window with a synthetic hole, true values);
* windows are drawn from the observed portions of all series;
* at inference, each missing value is predicted from its bidirectional
  context, blending the forward and backward passes (the BRITS idea).

Training uses plain mini-batch gradient descent with a tanh hidden layer —
enough capacity to beat interpolation on nonlinear signals, small enough to
train in milliseconds on benchmark-sized matrices.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer
from repro.utils.rng import ensure_rng


class _TinyMLP:
    """One-hidden-layer regression MLP trained with mini-batch SGD + momentum."""

    def __init__(self, n_in: int, n_hidden: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(n_in)
        self.W1 = rng.normal(0.0, scale, size=(n_in, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.W2 = rng.normal(0.0, 1.0 / np.sqrt(n_hidden), size=(n_hidden, 1))
        self.b2 = np.zeros(1)
        self._vel = [np.zeros_like(p) for p in (self.W1, self.b1, self.W2, self.b2)]

    def forward(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(X @ self.W1 + self.b1)
        return hidden @ self.W2 + self.b2, hidden

    def train_step(self, X, y, lr: float, momentum: float = 0.9) -> float:
        pred, hidden = self.forward(X)
        err = pred - y[:, None]
        n = X.shape[0]
        grad_out = err / n
        gW2 = hidden.T @ grad_out
        gb2 = grad_out.sum(axis=0)
        grad_hidden = (grad_out @ self.W2.T) * (1.0 - hidden**2)
        gW1 = X.T @ grad_hidden
        gb1 = grad_hidden.sum(axis=0)
        params = (self.W1, self.b1, self.W2, self.b2)
        grads = (gW1, gb1, gW2, gb2)
        for vel, param, grad in zip(self._vel, params, grads):
            vel *= momentum
            vel -= lr * grad
            param += vel
        return float((err**2).mean())

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.forward(X)[0][:, 0]


@register_imputer
class MLPImputer(BaseImputer):
    """Bidirectional window MLP imputation.

    Parameters
    ----------
    context:
        Number of observations on each side used as input features.
    n_hidden:
        Hidden layer width.
    epochs:
        Training epochs over the sampled windows.
    lr:
        SGD learning rate.
    random_state:
        Seed controlling weight init and window sampling.
    """

    name = "mlp"

    def __init__(
        self,
        context: int = 6,
        n_hidden: int = 16,
        epochs: int = 60,
        lr: float = 0.05,
        random_state: int | None = 0,
    ):
        if context < 1:
            raise ValidationError(f"context must be >= 1, got {context}")
        if n_hidden < 1:
            raise ValidationError(f"n_hidden must be >= 1, got {n_hidden}")
        self.context = int(context)
        self.n_hidden = int(n_hidden)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.random_state = random_state

    def _windows(self, filled: np.ndarray, mask: np.ndarray):
        """Extract (features, target) pairs from fully observed windows."""
        c = self.context
        feats, targets = [], []
        for i in range(filled.shape[0]):
            row = filled[i]
            clean = ~mask[i]
            for t in range(c, row.shape[0] - c):
                span = slice(t - c, t + c + 1)
                if not clean[span].all():
                    continue
                window = np.concatenate([row[t - c : t], row[t + 1 : t + c + 1]])
                feats.append(window)
                targets.append(row[t])
        if not feats:
            return None, None
        return np.asarray(feats), np.asarray(targets)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        filled = interpolate_rows(X)
        rng = ensure_rng(self.random_state)
        feats, targets = self._windows(filled, mask)
        if feats is None or feats.shape[0] < 8:
            return filled
        # Standardize features/targets for stable training.
        f_mean, f_std = feats.mean(), feats.std() + 1e-12
        feats_z = (feats - f_mean) / f_std
        t_mean, t_std = targets.mean(), targets.std() + 1e-12
        targets_z = (targets - t_mean) / t_std
        model = _TinyMLP(feats_z.shape[1], self.n_hidden, rng)
        n = feats_z.shape[0]
        batch = min(64, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                model.train_step(feats_z[idx], targets_z[idx], self.lr)
        # Iterative refinement: predict missing points from current context,
        # sweep a few times so long gaps propagate information inwards.
        c = self.context
        out = filled.copy()
        for _ in range(3):
            for i in range(X.shape[0]):
                miss_idx = np.flatnonzero(mask[i])
                for t in miss_idx:
                    if t < c or t >= X.shape[1] - c:
                        continue
                    window = np.concatenate(
                        [out[i, t - c : t], out[i, t + 1 : t + c + 1]]
                    )
                    z = (window - f_mean) / f_std
                    pred = model.predict(z[None, :])[0]
                    out[i, t] = pred * t_std + t_mean
        return out
