"""Clustering and label propagation for cheap dataset labeling (Section VI)."""

from repro.clustering.incremental import (
    IncrementalClustering,
    correlation_gain,
)
from repro.clustering.kshape import KShape, kshape_grid_search, kshape_iterative
from repro.clustering.labeling import ClusterLabeler, LabeledCorpus

__all__ = [
    "IncrementalClustering",
    "correlation_gain",
    "KShape",
    "kshape_grid_search",
    "kshape_iterative",
    "ClusterLabeler",
    "LabeledCorpus",
]
