"""Cluster-level dataset labeling (Section VI, step 1 of Fig. 2).

Running every imputation algorithm on every series is prohibitive; instead
the corpus is clustered, *representatives* of each cluster are labeled by
racing all algorithms on injected missing blocks, and the winning label is
propagated to the rest of the cluster.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.clustering.incremental import IncrementalClustering, ShardedClustering
from repro.exceptions import ValidationError
from repro.observability import get_logger, get_metrics, get_tracer
from repro.observability.ledger import ClusterAtlas, get_ledger
from repro.imputation.base import BaseImputer, get_imputer
from repro.imputation.evaluation import rank_imputers
from repro.parallel import ExecutionEngine, ParallelConfig
from repro.timeseries.missing import inject_missing_block, inject_tip_block
from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.utils.rng import ensure_rng

_log = get_logger(__name__)


def _rank_worker(
    job: tuple[np.ndarray, np.ndarray], *, imputer_names: tuple[str, ...]
) -> tuple[list[tuple[str, float]], float]:
    """Race the imputer slate on one (truth, mask) pair (picklable worker).

    Returns the ranking plus the wall seconds it took, so the parent
    process can record per-race latency even under the process backend
    (where worker-side metrics registries are no-ops).
    """
    truth, mask = job
    imputers = [get_imputer(name) for name in imputer_names]
    start = time.perf_counter()
    ranked = rank_imputers(imputers, truth, mask)
    return ranked, time.perf_counter() - start

#: Default algorithm slate used for labeling — one strong member per family,
#: kept small so labeling stays laptop-fast.
DEFAULT_LABELING_IMPUTERS: tuple[str, ...] = (
    "cdrec",
    "svdimp",
    "softimpute",
    "stmvl",
    "knn",
    "linear",
    "tkcm",
    "iim",
)


@dataclass
class LabeledCorpus:
    """Output of the labeling stage.

    Attributes
    ----------
    series:
        Faulty series (with injected missing blocks), ready for feature
        extraction.
    labels:
        Best-imputer name per series (cluster-propagated).
    rankings:
        Full algorithm ranking (best first) per series.
    categories:
        Dataset category per series (used by per-category experiments).
    n_benchmark_runs:
        How many full algorithm races were executed (cluster count), the
        cost the clustering amortizes.
    atlas:
        Fit-time :class:`~repro.observability.ledger.ClusterAtlas` — one
        z-normalized representative + winning label per cluster, used at
        serving time to assign incoming series a cluster (and NCC) for
        repair provenance rows and per-cluster scorecards.
    """

    series: list[TimeSeries]
    labels: np.ndarray
    rankings: list[list[str]]
    categories: list[str] = field(default_factory=list)
    n_benchmark_runs: int = 0
    atlas: ClusterAtlas | None = None

    def __len__(self) -> int:
        return len(self.series)


class ClusterLabeler:
    """Label datasets at cluster granularity.

    Parameters
    ----------
    imputer_names:
        Algorithm slate to race (defaults to
        :data:`DEFAULT_LABELING_IMPUTERS`).
    missing_ratio:
        Size of the injected missing block, as a fraction of series length.
        May be a single float or a sequence of floats — with a sequence,
        clusters cycle through the ratios, matching the paper's "synthetic
        missing blocks of varying sizes" and diversifying the labels (small
        gaps favour interpolation, long gaps favour cross-series methods).
    clustering:
        A fitted-per-dataset clustering factory; ``None`` uses
        :class:`IncrementalClustering` defaults.
    patterns:
        Missingness patterns to label with: ``"block"`` (interior block at
        a random position) and/or ``"tip"`` (block at the series end, the
        forecasting scenario).  Each (cluster, ratio, pattern) combination
        yields one labeled configuration.
    tie_epsilon:
        Relative RMSE margin within which two algorithms count as tied.
        Near-tied winners are label noise (both repairs are equally
        verisimilar), so ties collapse onto the earliest tied algorithm in
        ``imputer_names`` order.  0.0 disables tie handling.
    random_state:
        Seed for block injection.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig`.  Mask injection
        stays serial (it consumes the seeded RNG in a fixed order), but
        the per-(cluster, ratio, pattern) imputer races — the dominant
        labeling cost — fan out across workers.  Results are identical
        to the serial path for a fixed seed.
    shards:
        When > 1, datasets are clustered with
        :class:`~repro.clustering.incremental.ShardedClustering` over
        this many shards (identical labels on well-separated corpora,
        bounded divergence otherwise; ``1`` keeps the single-shard path).
    bank_path:
        Optional directory for disk-backed
        :class:`~repro.timeseries.batch.SeriesBank` banks (one
        subdirectory per dataset).  With sharded clustering the merge
        representatives then stream from disk instead of holding the
        corpus matrix in RAM.
    """

    def __init__(
        self,
        imputer_names=None,
        missing_ratio=0.1,
        clustering: IncrementalClustering | None = None,
        patterns: tuple[str, ...] = ("block",),
        tie_epsilon: float = 0.0,
        random_state: int | None = 0,
        parallel: ParallelConfig | None = None,
        shards: int = 1,
        bank_path=None,
    ):
        if imputer_names is None:
            imputer_names = DEFAULT_LABELING_IMPUTERS
        self.imputer_names = tuple(imputer_names)
        if not self.imputer_names:
            raise ValidationError("imputer_names must be non-empty")
        try:
            ratios = tuple(float(r) for r in missing_ratio)
        except TypeError:
            ratios = (float(missing_ratio),)
        if not ratios or any(not 0 < r < 1 for r in ratios):
            raise ValidationError(
                f"missing_ratio values must be in (0, 1), got {missing_ratio}"
            )
        self.missing_ratios = ratios
        self.patterns = tuple(patterns)
        if not self.patterns or any(
            p not in ("block", "tip") for p in self.patterns
        ):
            raise ValidationError(
                f"patterns must be drawn from ('block', 'tip'), got {patterns}"
            )
        if tie_epsilon < 0:
            raise ValidationError(f"tie_epsilon must be >= 0, got {tie_epsilon}")
        self.tie_epsilon = float(tie_epsilon)
        self._clustering_template = clustering
        self.random_state = random_state
        self.parallel = parallel
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self.bank_path = bank_path

    @property
    def missing_ratio(self) -> float:
        """First (or only) configured missing ratio."""
        return self.missing_ratios[0]

    def _make_clustering(self) -> IncrementalClustering:
        t = self._clustering_template
        kwargs = {} if t is None else dict(
            delta=t.delta,
            split_ratio=t.split_ratio,
            min_cluster_size=t.min_cluster_size,
            random_state=t.random_state,
        )
        if self.shards > 1:
            return ShardedClustering(n_shards=self.shards, **kwargs)
        return IncrementalClustering(**kwargs)

    def _fit_clustering(self, dataset_name: str, series: list):
        """Fit the per-dataset clustering (shard-aware, bank-aware)."""
        clustering = self._make_clustering()
        if not isinstance(clustering, ShardedClustering):
            return clustering.fit(series)
        bank = None
        if self.bank_path is not None:
            import pathlib

            from repro.timeseries.batch import SeriesBank

            safe = "".join(
                ch if ch.isalnum() or ch in "-_." else "_"
                for ch in (dataset_name or "dataset")
            )
            bank_dir = pathlib.Path(self.bank_path) / safe
            if (bank_dir / "meta.json").exists():
                bank = SeriesBank.open(bank_dir)
            else:
                bank = SeriesBank.create(bank_dir, series)
        return clustering.fit(series, bank=bank)

    def _imputers(self) -> list[BaseImputer]:
        return [get_imputer(name) for name in self.imputer_names]

    def _resolve_ties(self, ranked: list[tuple[str, float]]) -> list[str]:
        """Collapse near-tied winners onto a deterministic preference.

        Algorithms whose RMSE is within ``tie_epsilon`` (relative) of the
        best are re-ordered by their position in ``imputer_names`` — the
        stable preference that keeps label noise out of the training set.
        """
        names = [name for name, _ in ranked]
        if self.tie_epsilon <= 0 or not ranked:
            return names
        best_score = ranked[0][1]
        if not np.isfinite(best_score):
            return names
        threshold = best_score * (1.0 + self.tie_epsilon)
        tied = [name for name, score in ranked if score <= threshold]
        if len(tied) <= 1:
            return names
        preference = {name: i for i, name in enumerate(self.imputer_names)}
        tied.sort(key=lambda name: preference.get(name, len(preference)))
        rest = [name for name in names if name not in tied]
        return tied + rest

    # ------------------------------------------------------------------
    def label_dataset(
        self,
        dataset: TimeSeriesDataset,
        engine: ExecutionEngine | None = None,
    ) -> LabeledCorpus:
        """Cluster one dataset and label each cluster via its members.

        The whole cluster matrix (not a single series) is fed to the
        algorithms — the matrix methods need cross-series context — with a
        missing block injected into every member.  One labeled sample is
        produced per (series, missing-ratio) combination: varying block
        sizes diversify which algorithm wins.

        ``engine`` lets :meth:`label_corpus` share one worker pool across
        datasets; standalone calls build (and tear down) their own.
        """
        if engine is None:
            with ExecutionEngine(self.parallel) as engine:
                return self.label_dataset(dataset, engine=engine)
        tracer = get_tracer()
        metrics = get_metrics()
        labeling_span = tracer.span(
            "labeling.label_dataset",
            subsystem="labeling",
            dataset=dataset.name,
            n_series=len(dataset),
        )
        rank_hist = metrics.histogram(
            "repro_labeling_rank_seconds",
            "Wall seconds per (cluster, ratio, pattern) algorithm race",
        )
        with labeling_span:
            corpus = self._label_dataset_inner(dataset, rank_hist, engine)
        labeling_span.set_tag("n_clusters", corpus.n_benchmark_runs)
        labeling_span.set_tag("n_labeled", len(corpus))
        metrics.counter(
            "repro_labeling_benchmark_runs_total",
            "Full algorithm races executed during labeling",
        ).inc(corpus.n_benchmark_runs)
        metrics.counter(
            "repro_labeling_series_total",
            "Labeled series produced by cluster propagation",
        ).inc(len(corpus))
        _log.debug(
            "labeled dataset %s: %d series from %d benchmark runs",
            dataset.name,
            len(corpus),
            corpus.n_benchmark_runs,
        )
        return corpus

    def _label_dataset_inner(
        self, dataset: TimeSeriesDataset, rank_hist, engine: ExecutionEngine
    ) -> LabeledCorpus:
        rng = ensure_rng(self.random_state)
        dataset_label = dataset.name or "dataset"
        clustering = self._fit_clustering(dataset_label, list(dataset.series))
        # Phase 1 (serial, RNG-ordered): build one job per
        # (cluster, ratio, pattern) — the injected masks and faulty
        # series are produced in a fixed order so parallel execution
        # cannot perturb the seeded randomness.
        jobs: list[tuple[np.ndarray, np.ndarray]] = []
        job_faulty: list[list[TimeSeries]] = []
        job_meta: list[dict] = []
        cluster_truth: dict[str, np.ndarray] = {}
        dataset_name = dataset.name or "dataset"
        for cluster_idx, members in enumerate(clustering.clusters_):
            cluster_id = f"{dataset_name}:c{cluster_idx}"
            cluster_series = [dataset[i] for i in members]
            min_len = min(len(s) for s in cluster_series)
            truth = np.vstack([s.values[:min_len] for s in cluster_series])
            if np.isnan(truth).any():
                truth = np.vstack(
                    [TimeSeries(row).interpolated().values for row in truth]
                )
            cluster_truth[cluster_id] = truth
            for ratio in self.missing_ratios:
                for pattern in self.patterns:
                    mask = np.zeros_like(truth, dtype=bool)
                    cluster_faulty: list[TimeSeries] = []
                    for row_idx, member in enumerate(members):
                        row_series = TimeSeries(truth[row_idx])
                        if pattern == "tip":
                            _, spec = inject_tip_block(row_series, ratio=ratio)
                        else:
                            _, spec = inject_missing_block(
                                row_series, ratio=ratio, random_state=rng
                            )
                        mask[row_idx, spec.start : spec.stop] = True
                        cluster_faulty.append(
                            dataset[member].with_values(
                                np.where(mask[row_idx], np.nan, truth[row_idx])
                            )
                        )
                    jobs.append((truth, mask))
                    job_faulty.append(cluster_faulty)
                    job_meta.append(
                        {
                            "dataset": dataset_name,
                            "cluster_id": cluster_id,
                            "n_members": len(members),
                            "ratio": float(ratio),
                            "pattern": pattern,
                        }
                    )
        # Phase 2 (parallel): race the imputer slate on every
        # representative job.  Each job is independent; the engine
        # preserves job order, so labels come back deterministic.
        task = functools.partial(
            _rank_worker, imputer_names=self.imputer_names
        )
        outcomes = engine.map(task, jobs, label="labeling.rank_clusters")
        # Phase 3 (serial): resolve ties, propagate labels, and record
        # provenance — one ledger "label" row per race plus one atlas
        # entry per cluster (representative = mean member series, winner
        # = the first race's winning algorithm for that cluster).
        ledger = get_ledger()
        atlas = ClusterAtlas()
        registered: set[str] = set()
        labels: list[str] = []
        rankings: list[list[str]] = []
        faulty_series: list[TimeSeries] = []
        for (ranked, elapsed), cluster_faulty, meta in zip(
            outcomes, job_faulty, job_meta
        ):
            rank_hist.observe(elapsed)
            ranking_names = self._resolve_ties(ranked)
            truth = cluster_truth[meta["cluster_id"]]
            if meta["cluster_id"] not in registered:
                registered.add(meta["cluster_id"])
                atlas.add(
                    meta["cluster_id"], ranking_names[0], truth.mean(axis=0)
                )
            if ledger.enabled:
                from repro.timeseries.batch import ncc_rowwise, znorm_rows

                rep = atlas.representatives[
                    atlas.ids.index(meta["cluster_id"])
                ]
                member_ncc = ncc_rowwise(
                    znorm_rows(truth), np.tile(rep, (truth.shape[0], 1))
                )
                ledger.record(
                    "label",
                    {
                        **meta,
                        "winner": ranking_names[0],
                        "ranking": list(ranking_names),
                        "scores": {name: float(s) for name, s in ranked},
                        "member_ncc": [float(v) for v in member_ncc],
                    },
                )
            for faulty in cluster_faulty:
                faulty_series.append(faulty)
                labels.append(ranking_names[0])
                rankings.append(list(ranking_names))
        return LabeledCorpus(
            series=faulty_series,
            labels=np.array(labels, dtype=object),
            rankings=rankings,
            categories=[dataset.category] * len(faulty_series),
            n_benchmark_runs=len(jobs),
            atlas=atlas,
        )

    def label_corpus(self, datasets: list[TimeSeriesDataset]) -> LabeledCorpus:
        """Label several datasets and concatenate the results."""
        if not datasets:
            raise ValidationError("datasets list is empty")
        # One engine (one worker pool) shared across every dataset.
        with ExecutionEngine(self.parallel) as engine:
            parts = [self.label_dataset(ds, engine=engine) for ds in datasets]
        atlas = ClusterAtlas()
        for part in parts:
            if part.atlas is not None:
                atlas.merge(part.atlas)
        return LabeledCorpus(
            series=[s for p in parts for s in p.series],
            labels=np.concatenate([p.labels for p in parts]),
            rankings=[r for p in parts for r in p.rankings],
            categories=[c for p in parts for c in p.categories],
            n_benchmark_runs=sum(p.n_benchmark_runs for p in parts),
            atlas=atlas,
        )
