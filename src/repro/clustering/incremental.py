"""Incremental correlation-gain clustering (Algorithm 2).

Two phases:

1. **Initial split** — starting from one all-series cluster, any cluster
   whose average pairwise correlation is below ``delta`` is re-clustered
   into ``max(2, p * |C|)`` sub-clusters (k-means on correlation profiles);
   the queue drains when every cluster is sufficiently correlated.
2. **Refinement** — merge clusters (or move individual series) whenever the
   *correlation gain* (Eq. 1) is positive, reducing the cluster count while
   preserving intra-cluster correlation.

The correlation gain extends Louvain modularity to time series:

    dG_ij = (1 / 2m) * ( rho(C_i ∪ C_j) - rho(C_i) * rho(C_j) / m )
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError, ValidationError
from repro.timeseries.correlation import pairwise_correlation_matrix
from repro.timeseries.series import TimeSeries
from repro.utils.rng import ensure_rng


def correlation_gain(
    rho_union: float, rho_i: float, rho_j: float, m: int
) -> float:
    """Eq. 1: gain of merging clusters with the given average correlations."""
    if m <= 0:
        raise ValidationError(f"m must be > 0, got {m}")
    return (rho_union - (rho_i * rho_j) / m) / (2 * m)


class IncrementalClustering:
    """Split-then-refine clustering over a precomputed correlation matrix.

    Parameters
    ----------
    delta:
        Correlation threshold below which a cluster is split further.
    split_ratio:
        The ``p`` of Algorithm 2 — sub-cluster count is ``max(2, p * |C|)``.
    min_cluster_size:
        Clusters at or below this size are candidates for merging.
    random_state:
        Seed for the k-means initializations inside splits.
    """

    def __init__(
        self,
        delta: float = 0.75,
        split_ratio: float = 0.2,
        min_cluster_size: int = 3,
        random_state: int | None = 0,
    ):
        if not 0 < delta <= 1:
            raise ValidationError(f"delta must be in (0, 1], got {delta}")
        if not 0 < split_ratio <= 1:
            raise ValidationError(f"split_ratio must be in (0, 1], got {split_ratio}")
        self.delta = float(delta)
        self.split_ratio = float(split_ratio)
        self.min_cluster_size = int(min_cluster_size)
        self.random_state = random_state
        self.labels_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _avg_corr(self, members: list[int]) -> float:
        if len(members) <= 1:
            return 1.0
        idx = np.asarray(members)
        sub = self._corr[np.ix_(idx, idx)]
        iu = np.triu_indices(len(members), k=1)
        return float(sub[iu].mean())

    def _split(self, members: list[int], k: int, rng) -> list[list[int]]:
        """k-means on correlation-profile rows of the members."""
        idx = np.asarray(members)
        profiles = self._corr[idx]  # row = similarity profile vs. all series
        k = min(k, len(members))
        centers = profiles[rng.choice(len(members), size=k, replace=False)]
        assign = np.zeros(len(members), dtype=int)
        for _ in range(20):
            dists = ((profiles[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_assign = dists.argmin(axis=1)
            if (new_assign == assign).all():
                break
            assign = new_assign
            for c in range(k):
                mask = assign == c
                if mask.any():
                    centers[c] = profiles[mask].mean(axis=0)
        groups = [
            [members[i] for i in np.flatnonzero(assign == c)] for c in range(k)
        ]
        groups = [g for g in groups if g]
        if len(groups) < 2:  # degenerate k-means: force a balanced bisection
            half = len(members) // 2
            groups = [members[:half], members[half:]]
        return groups

    # ------------------------------------------------------------------
    def fit(self, series_list: list[TimeSeries]) -> "IncrementalClustering":
        """Cluster the series; sets ``labels_`` and ``clusters_``."""
        if not series_list:
            raise ClusteringError("cannot cluster an empty series list")
        n = len(series_list)
        rng = ensure_rng(self.random_state)
        self._corr = pairwise_correlation_matrix(series_list)
        m = n  # total number of series (the `m` of Eq. 1)

        # Phase 1: initial splitting (lines 2-9).
        pending: list[list[int]] = [list(range(n))]
        final: list[list[int]] = []
        while pending:
            cluster = pending.pop()
            if len(cluster) <= 1 or self._avg_corr(cluster) >= self.delta:
                final.append(cluster)
                continue
            k = max(2, int(round(self.split_ratio * len(cluster))))
            pending.extend(self._split(cluster, k, rng))

        # Phase 2: refinement by merge/move on correlation gain (lines 10-18).
        clusters = [list(c) for c in final]
        changed = True
        guard = 0
        while changed and guard < 10 * max(1, len(clusters)):
            changed = False
            guard += 1
            # Merge pass over small clusters.
            order = sorted(range(len(clusters)), key=lambda i: len(clusters[i]))
            for i in order:
                if not clusters[i] or len(clusters[i]) > self.min_cluster_size:
                    continue
                rho_i = self._avg_corr(clusters[i])
                best_gain, best_j = 0.0, -1
                for j in range(len(clusters)):
                    if j == i or not clusters[j]:
                        continue
                    union = clusters[i] + clusters[j]
                    rho_union = self._avg_corr(union)
                    # Guard: a merge must not break the phase-1 correlation
                    # threshold — for large m the gain's second term vanishes
                    # and Eq. 1 alone would merge anything positive.
                    if rho_union < self.delta:
                        continue
                    gain = correlation_gain(
                        rho_union, rho_i, self._avg_corr(clusters[j]), m
                    )
                    if gain > best_gain:
                        best_gain, best_j = gain, j
                if best_j >= 0:
                    clusters[best_j].extend(clusters[i])
                    clusters[i] = []
                    changed = True
                    continue
                # No whole-cluster merge: try moving individual series.
                for x in list(clusters[i]):
                    if len(clusters[i]) <= 1:
                        break
                    best_gain, best_j = 0.0, -1
                    for j in range(len(clusters)):
                        if j == i or not clusters[j]:
                            continue
                        rho_union = self._avg_corr(clusters[j] + [x])
                        if rho_union < self.delta:
                            continue
                        gain = correlation_gain(
                            rho_union,
                            self._avg_corr([x]),
                            self._avg_corr(clusters[j]),
                            m,
                        )
                        if gain > best_gain:
                            best_gain, best_j = gain, j
                    if best_j >= 0:
                        clusters[i].remove(x)
                        clusters[best_j].append(x)
                        changed = True
        clusters = [c for c in clusters if c]
        labels = np.empty(n, dtype=int)
        for cid, members in enumerate(clusters):
            for idx in members:
                labels[idx] = cid
        self.labels_ = labels
        self.clusters_ = clusters
        return self

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        """Number of final clusters."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        return len(self.clusters_)

    def average_correlation(self) -> float:
        """Mean intra-cluster correlation over all final clusters."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        values = [self._avg_corr(c) for c in self.clusters_]
        return float(np.mean(values))
