"""Incremental correlation-gain clustering (Algorithm 2).

Two phases:

1. **Initial split** — starting from one all-series cluster, any cluster
   whose average pairwise correlation is below ``delta`` is re-clustered
   into ``max(2, p * |C|)`` sub-clusters (k-means on correlation profiles);
   the queue drains when every cluster is sufficiently correlated.
2. **Refinement** — merge clusters (or move individual series) whenever the
   *correlation gain* (Eq. 1) is positive, reducing the cluster count while
   preserving intra-cluster correlation.

The correlation gain extends Louvain modularity to time series:

    dG_ij = (1 / 2m) * ( rho(C_i ∪ C_j) - rho(C_i) * rho(C_j) / m )
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError, ValidationError
from repro.timeseries.correlation import pairwise_correlation_matrix
from repro.timeseries.series import TimeSeries
from repro.utils.rng import ensure_rng


def correlation_gain(
    rho_union: float, rho_i: float, rho_j: float, m: int
) -> float:
    """Eq. 1: gain of merging clusters with the given average correlations."""
    if m <= 0:
        raise ValidationError(f"m must be > 0, got {m}")
    return (rho_union - (rho_i * rho_j) / m) / (2 * m)


class _RefineSums:
    """Incrementally maintained correlation sums for phase-2 refinement.

    Given the precomputed corpus correlation matrix and an initial
    partition, maintains

    * ``col[x, c]`` — ``corr[x, members(c)].sum()`` for every series
      ``x`` and cluster ``c`` (the per-series column sums);
    * ``internal[c]`` — the sum of the distinct intra-cluster pairs
      ``sum_{i<j in c} corr[i, j]``;
    * ``sizes[c]`` — ``|c|``.

    With these, the average correlation of a move target ``C ∪ {x}`` is
    ``(internal[c] + col[x, c]) / C(|c|+1, 2)`` — an O(1) lookup — and a
    merge candidate ``C_i ∪ C_j`` needs only the O(|C_i|) gather
    ``col[members(i), j].sum()``.  Accepted merges/moves update the
    sums in O(n).
    """

    def __init__(self, corr: np.ndarray, clusters: list[list[int]]):
        n = corr.shape[0]
        ncl = len(clusters)
        self.corr = corr
        self.col = np.zeros((n, ncl))
        self.internal = np.zeros(ncl)
        self.sizes = np.zeros(ncl, dtype=np.int64)
        for c, members in enumerate(clusters):
            if not members:
                continue
            idx = np.asarray(members)
            self.col[:, c] = corr[:, idx].sum(axis=1)
            # Column sums over members count each internal pair twice
            # plus the unit diagonal once per member.
            self.sizes[c] = len(members)
            self.internal[c] = (self.col[idx, c].sum() - len(members)) / 2.0

    # -- queries -------------------------------------------------------
    def rho(self, c: int) -> float:
        """Average pairwise correlation of cluster ``c`` (1.0 if |c| <= 1)."""
        k = int(self.sizes[c])
        if k <= 1:
            return 1.0
        return float(self.internal[c] / (k * (k - 1) / 2.0))

    def rho_merge(
        self, i: int, j: int, members_i: np.ndarray
    ) -> tuple[float, float]:
        """``rho(C_i ∪ C_j)`` plus the cross-pair sum (for the update)."""
        cross = float(self.col[members_i, j].sum())
        k = int(self.sizes[i] + self.sizes[j])
        rho = (float(self.internal[i] + self.internal[j]) + cross) / (
            k * (k - 1) / 2.0
        )
        return rho, cross

    def rho_move(self, x: int, j: int) -> float:
        """``rho(C_j ∪ {x})`` as an O(1) lookup (x must not be in j)."""
        k = int(self.sizes[j]) + 1
        return float(
            (self.internal[j] + self.col[x, j]) / (k * (k - 1) / 2.0)
        )

    # -- updates -------------------------------------------------------
    def apply_merge(self, i: int, j: int, cross: float) -> None:
        """Fold cluster ``i`` into ``j`` (O(n))."""
        self.internal[j] += self.internal[i] + cross
        self.internal[i] = 0.0
        self.col[:, j] += self.col[:, i]
        self.col[:, i] = 0.0
        self.sizes[j] += self.sizes[i]
        self.sizes[i] = 0

    def apply_move(self, x: int, i: int, j: int) -> None:
        """Move series ``x`` from cluster ``i`` to ``j`` (O(n))."""
        # col[x, i] counts corr[x, x] == 1 exactly once.
        self.internal[i] -= self.col[x, i] - self.corr[x, x]
        self.internal[j] += self.col[x, j]
        self.col[:, i] -= self.corr[:, x]
        self.col[:, j] += self.corr[:, x]
        self.sizes[i] -= 1
        self.sizes[j] += 1


class IncrementalClustering:
    """Split-then-refine clustering over a precomputed correlation matrix.

    Parameters
    ----------
    delta:
        Correlation threshold below which a cluster is split further.
    split_ratio:
        The ``p`` of Algorithm 2 — sub-cluster count is ``max(2, p * |C|)``.
    min_cluster_size:
        Clusters at or below this size are candidates for merging.
    random_state:
        Seed for the k-means initializations inside splits.
    incremental:
        When True (default), phase 2 maintains per-cluster internal
        correlation sums and per-series column sums so every merge/move
        candidate's ``rho_union`` is an O(1)/O(|C|) lookup; ``False``
        keeps the legacy path that re-slices ``np.ix_`` submatrices per
        candidate (retained as the reference for parity tests).
    """

    def __init__(
        self,
        delta: float = 0.75,
        split_ratio: float = 0.2,
        min_cluster_size: int = 3,
        random_state: int | None = 0,
        incremental: bool = True,
    ):
        if not 0 < delta <= 1:
            raise ValidationError(f"delta must be in (0, 1], got {delta}")
        if not 0 < split_ratio <= 1:
            raise ValidationError(f"split_ratio must be in (0, 1], got {split_ratio}")
        self.delta = float(delta)
        self.split_ratio = float(split_ratio)
        self.min_cluster_size = int(min_cluster_size)
        self.random_state = random_state
        self.incremental = bool(incremental)
        self.labels_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _avg_corr(self, members: list[int]) -> float:
        if len(members) <= 1:
            return 1.0
        idx = np.asarray(members)
        sub = self._corr[np.ix_(idx, idx)]
        iu = np.triu_indices(len(members), k=1)
        return float(sub[iu].mean())

    def _split(self, members: list[int], k: int, rng) -> list[list[int]]:
        """k-means on correlation-profile rows of the members."""
        idx = np.asarray(members)
        profiles = self._corr[idx]  # row = similarity profile vs. all series
        k = min(k, len(members))
        centers = profiles[rng.choice(len(members), size=k, replace=False)]
        assign = np.zeros(len(members), dtype=int)
        for _ in range(20):
            dists = ((profiles[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_assign = dists.argmin(axis=1)
            if (new_assign == assign).all():
                break
            assign = new_assign
            for c in range(k):
                mask = assign == c
                if mask.any():
                    centers[c] = profiles[mask].mean(axis=0)
        groups = [
            [members[i] for i in np.flatnonzero(assign == c)] for c in range(k)
        ]
        groups = [g for g in groups if g]
        if len(groups) < 2:  # degenerate k-means: force a balanced bisection
            half = len(members) // 2
            groups = [members[:half], members[half:]]
        return groups

    # ------------------------------------------------------------------
    def _refine_legacy(self, clusters: list[list[int]], m: int) -> list[list[int]]:
        """Reference phase-2 refinement: rescans ``np.ix_`` submatrices.

        Every merge/move candidate recomputes ``rho(C_i ∪ C_j)`` from
        scratch — O(|C|²) per candidate.  Kept as the semantics-defining
        path; :meth:`_refine_incremental` is parity-tested against it.
        """
        changed = True
        guard = 0
        while changed and guard < 10 * max(1, len(clusters)):
            changed = False
            guard += 1
            # Merge pass over small clusters.
            order = sorted(range(len(clusters)), key=lambda i: len(clusters[i]))
            for i in order:
                if not clusters[i] or len(clusters[i]) > self.min_cluster_size:
                    continue
                rho_i = self._avg_corr(clusters[i])
                best_gain, best_j = 0.0, -1
                for j in range(len(clusters)):
                    if j == i or not clusters[j]:
                        continue
                    union = clusters[i] + clusters[j]
                    rho_union = self._avg_corr(union)
                    # Guard: a merge must not break the phase-1 correlation
                    # threshold — for large m the gain's second term vanishes
                    # and Eq. 1 alone would merge anything positive.
                    if rho_union < self.delta:
                        continue
                    gain = correlation_gain(
                        rho_union, rho_i, self._avg_corr(clusters[j]), m
                    )
                    if gain > best_gain:
                        best_gain, best_j = gain, j
                if best_j >= 0:
                    clusters[best_j].extend(clusters[i])
                    clusters[i] = []
                    changed = True
                    continue
                # No whole-cluster merge: try moving individual series.
                for x in list(clusters[i]):
                    if len(clusters[i]) <= 1:
                        break
                    best_gain, best_j = 0.0, -1
                    for j in range(len(clusters)):
                        if j == i or not clusters[j]:
                            continue
                        rho_union = self._avg_corr(clusters[j] + [x])
                        if rho_union < self.delta:
                            continue
                        gain = correlation_gain(
                            rho_union,
                            self._avg_corr([x]),
                            self._avg_corr(clusters[j]),
                            m,
                        )
                        if gain > best_gain:
                            best_gain, best_j = gain, j
                    if best_j >= 0:
                        clusters[i].remove(x)
                        clusters[best_j].append(x)
                        changed = True
        return clusters

    def _refine_incremental(
        self, clusters: list[list[int]], m: int
    ) -> list[list[int]]:
        """Louvain-style phase 2 on maintained correlation sums.

        Same decision sequence as :meth:`_refine_legacy`, but ``rho`` of
        a move target is an O(1) lookup and a merge candidate costs
        O(|C_i|) (a column-sum gather), with every accepted merge/move
        updating the sums in O(n) instead of re-slicing submatrices.
        """
        sums = _RefineSums(self._corr, clusters)
        changed = True
        guard = 0
        while changed and guard < 10 * max(1, len(clusters)):
            changed = False
            guard += 1
            order = sorted(range(len(clusters)), key=lambda i: len(clusters[i]))
            for i in order:
                if not clusters[i] or len(clusters[i]) > self.min_cluster_size:
                    continue
                rho_i = sums.rho(i)
                best_gain, best_j, best_cross = 0.0, -1, 0.0
                members_i = np.asarray(clusters[i])
                for j in range(len(clusters)):
                    if j == i or not clusters[j]:
                        continue
                    rho_union, cross = sums.rho_merge(i, j, members_i)
                    # Same guard as the legacy path: a merge must not
                    # break the phase-1 correlation threshold.
                    if rho_union < self.delta:
                        continue
                    gain = correlation_gain(rho_union, rho_i, sums.rho(j), m)
                    if gain > best_gain:
                        best_gain, best_j, best_cross = gain, j, cross
                if best_j >= 0:
                    sums.apply_merge(i, best_j, best_cross)
                    clusters[best_j].extend(clusters[i])
                    clusters[i] = []
                    changed = True
                    continue
                # No whole-cluster merge: try moving individual series.
                for x in list(clusters[i]):
                    if len(clusters[i]) <= 1:
                        break
                    best_gain, best_j = 0.0, -1
                    for j in range(len(clusters)):
                        if j == i or not clusters[j]:
                            continue
                        rho_union = sums.rho_move(x, j)
                        if rho_union < self.delta:
                            continue
                        gain = correlation_gain(
                            rho_union, 1.0, sums.rho(j), m
                        )
                        if gain > best_gain:
                            best_gain, best_j = gain, j
                    if best_j >= 0:
                        sums.apply_move(x, i, best_j)
                        clusters[i].remove(x)
                        clusters[best_j].append(x)
                        changed = True
        return clusters

    # ------------------------------------------------------------------
    def _cluster_members(
        self, members: list[int], rng, m: int
    ) -> list[list[int]]:
        """Both phases of Algorithm 2 over one index subset.

        ``self._corr`` must already hold the corpus correlation matrix;
        ``members`` are (global) row indices into it.  Called with all
        indices by :meth:`fit` and once per shard by
        :class:`ShardedClustering`.
        """
        # Phase 1: initial splitting (lines 2-9).
        pending: list[list[int]] = [list(members)]
        final: list[list[int]] = []
        while pending:
            cluster = pending.pop()
            if len(cluster) <= 1 or self._avg_corr(cluster) >= self.delta:
                final.append(cluster)
                continue
            k = max(2, int(round(self.split_ratio * len(cluster))))
            pending.extend(self._split(cluster, k, rng))

        # Phase 2: refinement by merge/move on correlation gain (lines 10-18).
        clusters = [list(c) for c in final]
        if self.incremental:
            clusters = self._refine_incremental(clusters, m)
        else:
            clusters = self._refine_legacy(clusters, m)
        return [c for c in clusters if c]

    def _finalize(self, n: int, clusters: list[list[int]]) -> None:
        clusters = [c for c in clusters if c]
        labels = np.empty(n, dtype=int)
        for cid, members in enumerate(clusters):
            for idx in members:
                labels[idx] = cid
        self.labels_ = labels
        self.clusters_ = clusters

    def fit(self, series_list: list[TimeSeries]) -> "IncrementalClustering":
        """Cluster the series; sets ``labels_`` and ``clusters_``."""
        if not series_list:
            raise ClusteringError("cannot cluster an empty series list")
        n = len(series_list)
        rng = ensure_rng(self.random_state)
        self._corr = pairwise_correlation_matrix(series_list)
        m = n  # total number of series (the `m` of Eq. 1)
        clusters = self._cluster_members(list(range(n)), rng, m)
        self._finalize(n, clusters)
        return self

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        """Number of final clusters."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        return len(self.clusters_)

    def average_correlation(self) -> float:
        """Mean intra-cluster correlation over all final clusters."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        values = [self._avg_corr(c) for c in self.clusters_]
        return float(np.mean(values))


class ShardedClustering(IncrementalClustering):
    """Shard-and-merge variant of Algorithm 2 for corpora past one pass.

    The corpus is partitioned into ``n_shards`` contiguous shards; both
    phases of :class:`IncrementalClustering` run independently per shard
    (the split queue and the :class:`_RefineSums` refinement never look
    outside the shard), then shard-local clusters are merged:

    1. every live cluster gets a representative (the mean of its
       z-normed member rows);
    2. cross-shard cluster pairs are ranked by representative NCC
       (:func:`~repro.timeseries.batch.ncc_rowwise`) — a cheap proxy
       that prunes the quadratic pair space;
    3. surviving candidates are verified *exactly* with the maintained
       correlation sums (``rho(C_i ∪ C_j)`` ≥ ``delta`` and Eq. 1 gain
       > 0, the same acceptance rule as single-shard refinement), for at
       most ``merge_passes`` rounds;
    4. one final bounded refinement pass runs over the merged partition.

    With ``n_shards=1`` the merge stage has no cross-shard pairs and the
    final refinement re-runs on an already-converged partition, so the
    result is *identical* to :class:`IncrementalClustering` — the parity
    anchor the tests pin.  Larger shard counts trade a bounded amount of
    label divergence for per-shard working sets.

    Parameters
    ----------
    n_shards:
        Number of contiguous shards (clamped to the corpus size).
    merge_passes:
        Maximum representative-merge rounds between per-shard clustering
        and the final refinement pass.
    """

    def __init__(
        self,
        n_shards: int = 4,
        merge_passes: int = 2,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if merge_passes < 0:
            raise ValidationError(
                f"merge_passes must be >= 0, got {merge_passes}"
            )
        self.n_shards = int(n_shards)
        self.merge_passes = int(merge_passes)

    # ------------------------------------------------------------------
    def _merge_across_shards(
        self,
        clusters: list[list[int]],
        shard_of: list[int],
        znorm: np.ndarray,
        m: int,
    ) -> list[list[int]]:
        """Representative-guided exact merging of cross-shard clusters."""
        from repro.timeseries.batch import ncc_rowwise

        sums = _RefineSums(self._corr, clusters)
        next_tag = -1  # merged clusters span shards: give each a fresh tag
        for _ in range(self.merge_passes):
            live = [c for c in range(len(clusters)) if clusters[c]]
            if len(live) < 2:
                break
            pairs = [
                (a, b)
                for pos, a in enumerate(live)
                for b in live[pos + 1:]
                if shard_of[a] != shard_of[b]
            ]
            if not pairs:
                break
            reps = {
                c: znorm[np.asarray(clusters[c])].mean(axis=0) for c in live
            }
            sims = ncc_rowwise(
                np.vstack([reps[a] for a, _ in pairs]),
                np.vstack([reps[b] for _, b in pairs]),
            )
            changed = False
            for k in np.argsort(-sims, kind="stable"):
                if sims[k] < self.delta:
                    break  # descending order: every later proxy is lower
                a, b = pairs[k]
                if not clusters[a] or not clusters[b]:
                    continue  # one side was already folded this pass
                rho_union, cross = sums.rho_merge(
                    a, b, np.asarray(clusters[a])
                )
                if rho_union < self.delta:
                    continue
                gain = correlation_gain(rho_union, sums.rho(a), sums.rho(b), m)
                if gain <= 0.0:
                    continue
                sums.apply_merge(a, b, cross)
                clusters[b].extend(clusters[a])
                clusters[a] = []
                shard_of[b] = next_tag
                next_tag -= 1
                changed = True
            if not changed:
                break
        return clusters

    # ------------------------------------------------------------------
    def fit(
        self, series_list: list[TimeSeries], *, bank=None
    ) -> "ShardedClustering":
        """Cluster the series shard-by-shard; sets ``labels_``/``clusters_``.

        Parameters
        ----------
        series_list:
            The corpus, as in :meth:`IncrementalClustering.fit`.
        bank:
            Optional prepared :class:`~repro.timeseries.batch.SeriesBank`
            (possibly disk-backed) whose z-normed rows supply the merge
            representatives; built from the series when omitted.
        """
        if not series_list:
            raise ClusteringError("cannot cluster an empty series list")
        n = len(series_list)
        rng = ensure_rng(self.random_state)
        self._corr = pairwise_correlation_matrix(series_list)
        m = n

        shards = max(1, min(self.n_shards, n))
        bounds = np.linspace(0, n, shards + 1).astype(int)
        clusters: list[list[int]] = []
        shard_of: list[int] = []
        for s in range(shards):
            members = list(range(bounds[s], bounds[s + 1]))
            if not members:
                continue
            for cluster in self._cluster_members(members, rng, m):
                clusters.append(cluster)
                shard_of.append(s)

        if shards > 1 and self.merge_passes > 0:
            if bank is None:
                from repro.timeseries.batch import SeriesBank

                bank = SeriesBank.from_series(series_list)
            clusters = self._merge_across_shards(
                clusters, shard_of, bank.znorm, m
            )

        # Final bounded refinement over the merged partition (a no-op
        # when every shard-local partition already converged globally —
        # in particular whenever shards == 1).
        if self.incremental:
            clusters = self._refine_incremental(clusters, m)
        else:
            clusters = self._refine_legacy(clusters, m)
        self._finalize(n, clusters)
        return self
