"""K-Shape clustering (Paparrizos & Gravano, SIGMOD'15) and its variants.

K-Shape alternates:

* **assignment** — each series joins the centroid with the smallest
  shape-based distance (SBD = 1 - max normalized cross-correlation);
* **refinement** — each centroid becomes the leading eigenvector of the
  alignment-corrected scatter matrix of its members (shape extraction),
  with members first SBD-aligned to the current centroid.

The ablation (Fig. 11) compares incremental clustering against K-Shape
``default`` (k=8), ``grid`` (sweep k, keep the best correlation), and
``iterative`` (grow k until the intra-cluster correlation target is met).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError, ValidationError
from repro.timeseries.batch import ncc_cross, ncc_rowwise
from repro.timeseries.correlation import (
    average_pairwise_correlation,
)
from repro.timeseries.series import TimeSeries
from repro.utils.rng import ensure_rng


def _znorm(x: np.ndarray) -> np.ndarray:
    std = x.std()
    if std == 0:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def _ncc_shift(x: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Max normalized cross-correlation between x and y, and its shift.

    Scalar reference implementation — the hot loops below go through the
    batched :func:`~repro.timeseries.batch.ncc_cross` /
    :func:`~repro.timeseries.batch.ncc_rowwise` kernels, which are
    parity-tested (values ≤ 1e-9, shifts exact) against this function.
    """
    n = x.shape[0]
    denom = np.linalg.norm(x) * np.linalg.norm(y)
    if denom == 0:
        return 0.0, 0
    size = 1 << (2 * n - 1).bit_length()
    cc = np.fft.irfft(np.fft.rfft(x, size) * np.conj(np.fft.rfft(y, size)), size)
    cc = np.concatenate((cc[-(n - 1):], cc[:n]))
    idx = int(np.argmax(cc))
    return float(cc[idx] / denom), idx - (n - 1)


def _shift_series(x: np.ndarray, shift: int) -> np.ndarray:
    """Shift with zero padding (positive shift moves the series right)."""
    out = np.zeros_like(x)
    if shift > 0:
        out[shift:] = x[: x.shape[0] - shift]
    elif shift < 0:
        out[:shift] = x[-shift:]
    else:
        out[:] = x
    return out


class KShape:
    """K-Shape clustering with a fixed cluster count.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iter:
        Assignment/refinement rounds.
    random_state:
        Seed for the initial random assignment.
    """

    def __init__(
        self, n_clusters: int = 8, max_iter: int = 15, random_state: int | None = 0
    ):
        if n_clusters < 1:
            raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.random_state = random_state
        self.labels_: np.ndarray | None = None

    def _extract_shape(
        self, members: np.ndarray, centroid: np.ndarray
    ) -> np.ndarray:
        """Shape extraction: leading eigenvector of the aligned scatter."""
        if members.shape[0] == 0:
            return centroid
        aligned = np.empty_like(members)
        if centroid.any():
            # One batched NCC pass aligns every member to the centroid.
            _, shifts = ncc_cross(members, centroid[None, :])
            for i, row in enumerate(members):
                aligned[i] = _shift_series(row, -int(shifts[i, 0]))
        else:
            aligned[:] = members
        n = aligned.shape[1]
        S = aligned.T @ aligned
        Q = np.eye(n) - np.ones((n, n)) / n
        M = Q @ S @ Q
        # Power iteration for the leading eigenvector (fast, deterministic).
        v = centroid if centroid.any() else np.ones(n)
        v = v / (np.linalg.norm(v) + 1e-12)
        for _ in range(50):
            v_new = M @ v
            norm = np.linalg.norm(v_new)
            if norm < 1e-12:
                break
            v_new /= norm
            if np.abs(v_new - v).max() < 1e-8:
                v = v_new
                break
            v = v_new
        # Sign: orient toward the member average.
        if aligned.mean(axis=0) @ v < 0:
            v = -v
        return _znorm(v)

    def fit(self, series_list: list[TimeSeries]) -> "KShape":
        """Cluster the series; sets ``labels_`` and ``centroids_``.

        Series of different lengths are truncated to the common minimum
        (shape extraction needs aligned matrices).
        """
        if not series_list:
            raise ClusteringError("cannot cluster an empty series list")
        arrays = [
            (s.interpolated() if s.has_missing else s).values
            if isinstance(s, TimeSeries)
            else np.asarray(s, dtype=float)
            for s in series_list
        ]
        min_len = min(a.shape[0] for a in arrays)
        data = np.vstack([_znorm(a[:min_len]) for a in arrays])
        n = data.shape[0]
        k = min(self.n_clusters, n)
        rng = ensure_rng(self.random_state)
        labels = rng.integers(0, k, size=n)
        centroids = np.zeros((k, data.shape[1]))
        for _ in range(self.max_iter):
            for c in range(k):
                centroids[c] = self._extract_shape(data[labels == c], centroids[c])
            # Assignment: one batched (n, k) NCC matrix instead of n*k
            # scalar FFTs; argmin semantics identical to the scalar loop.
            ncc_vals, _ = ncc_cross(data, centroids)
            new_labels = labels.copy()
            new_labels[:] = np.argmin(1.0 - ncc_vals, axis=1)
            # Reseed empty clusters with the worst-fitting series so k is
            # actually used (standard k-shape practice).  The fit vector
            # is recomputed per empty cluster because earlier reseeds
            # mutate both centroids and assignments.
            for c in range(k):
                if (new_labels == c).any():
                    continue
                fit = 1.0 - ncc_rowwise(data, centroids[new_labels])
                donor_ok = np.array(
                    [np.sum(new_labels == new_labels[i]) > 1 for i in range(n)]
                )
                candidates = np.flatnonzero(donor_ok)
                if candidates.size == 0:
                    break
                worst = candidates[int(np.argmax(fit[candidates]))]
                new_labels[worst] = c
                centroids[c] = data[worst]
            if (new_labels == labels).all():
                break
            labels = new_labels
        self.labels_ = labels
        self.centroids_ = centroids
        self._series = list(series_list)
        return self

    @property
    def n_clusters_(self) -> int:
        """Number of non-empty clusters found."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        return int(np.unique(self.labels_).size)

    def average_correlation(self) -> float:
        """Mean intra-cluster pairwise correlation."""
        if self.labels_ is None:
            raise ClusteringError("clustering is not fitted")
        values = []
        for c in np.unique(self.labels_):
            members = [self._series[i] for i in np.flatnonzero(self.labels_ == c)]
            values.append(average_pairwise_correlation(members))
        return float(np.mean(values))


def kshape_grid_search(
    series_list: list[TimeSeries],
    k_values=range(2, 16),
    random_state: int | None = 0,
) -> KShape:
    """Sweep k and return the fitted K-Shape with the best avg correlation."""
    best: KShape | None = None
    best_corr = -np.inf
    for k in k_values:
        if k > len(series_list):
            break
        model = KShape(n_clusters=k, random_state=random_state).fit(series_list)
        corr = model.average_correlation()
        if corr > best_corr:
            best_corr, best = corr, model
    if best is None:
        raise ClusteringError("grid search produced no clustering")
    return best


def kshape_iterative(
    series_list: list[TimeSeries],
    target_correlation: float = 0.85,
    max_k: int | None = None,
    random_state: int | None = 0,
) -> KShape:
    """Grow k until the average intra-cluster correlation reaches the target.

    Mirrors the "iterative" variant of Fig. 11: high correlation, but at the
    cost of many clusters.
    """
    max_k = max_k or len(series_list)
    model = None
    for k in range(2, max_k + 1):
        model = KShape(n_clusters=k, random_state=random_state).fit(series_list)
        if model.average_correlation() >= target_correlation:
            return model
    if model is None:
        raise ClusteringError("iterative search produced no clustering")
    return model
