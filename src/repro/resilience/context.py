"""Process-level fault policy / injector installation.

Mirrors the observability substrate's ``get/set/use`` pattern: library
code consults the process-level handles at instrumented call sites, and
both default to ``None`` so the fault-free hot path pays exactly one
attribute load and an ``is None`` branch.

Explicitly passed objects always win over the process-level ones —
ModelRace, for example, prefers ``ModelRaceConfig.fault_policy`` and
falls back to :func:`get_fault_policy`.
"""

from __future__ import annotations

import contextlib

from repro.resilience.injector import FaultInjector
from repro.resilience.policy import FaultPolicy

_FAULT_POLICY: FaultPolicy | None = None
_FAULT_INJECTOR: FaultInjector | None = None


def get_fault_policy() -> FaultPolicy | None:
    """The process-level :class:`FaultPolicy` (``None`` when uninstalled)."""
    return _FAULT_POLICY


def set_fault_policy(policy: FaultPolicy | None) -> None:
    """Install (or clear, with ``None``) the process-level fault policy."""
    global _FAULT_POLICY
    _FAULT_POLICY = policy


def get_fault_injector() -> FaultInjector | None:
    """The process-level :class:`FaultInjector` (``None`` when uninstalled)."""
    return _FAULT_INJECTOR


def set_fault_injector(injector: FaultInjector | None) -> None:
    """Install (or clear, with ``None``) the process-level fault injector."""
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


@contextlib.contextmanager
def use_fault_policy(policy: FaultPolicy | None):
    """Scoped :func:`set_fault_policy`; restores the previous policy."""
    previous = _FAULT_POLICY
    set_fault_policy(policy)
    try:
        yield policy
    finally:
        set_fault_policy(previous)


@contextlib.contextmanager
def use_fault_injector(injector: FaultInjector | None):
    """Scoped :func:`set_fault_injector`; restores the previous injector."""
    previous = _FAULT_INJECTOR
    set_fault_injector(injector)
    try:
        yield injector
    finally:
        set_fault_injector(previous)
