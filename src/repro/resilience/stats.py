"""Process-wide resilience counters.

Mirrors :func:`repro.parallel.executor.engine_stats`: policies, breakers,
and injectors are short-lived objects, so serving-health documents read
the process aggregate here instead of holding object references.  All
counters are free (a dict increment under a lock) and only tick on the
*failure* paths, so the fault-free hot path never touches them.
"""

from __future__ import annotations

import threading

_LOCK = threading.Lock()
_STATS: dict[str, int] = {}

#: Counter keys with stable meaning (other keys may appear over time).
KNOWN_KEYS = (
    "retries",            # FaultPolicy retry sleeps performed
    "deadline_hits",      # calls abandoned for overrunning their deadline
    "faults_injected",    # FaultInjector rules fired (all kinds)
    "worker_crashes",     # process workers detected dead by the engine
    "backend_demotions",  # process->thread / thread->serial demotions
    "quarantines",        # circuit breakers tripped open
    "degraded_requests",  # inference requests served in degraded mode
    "fallback_requests",  # inference requests served by the static fallback
    "member_failures",    # ensemble members dropped from a vote
)


def tick(key: str, n: int = 1) -> None:
    """Increment the process-wide resilience counter ``key`` by ``n``."""
    with _LOCK:
        _STATS[key] = _STATS.get(key, 0) + int(n)


def resilience_stats() -> dict[str, int]:
    """Copy of all resilience counters accumulated since process start.

    Keys listed in :data:`KNOWN_KEYS` are always present (zero-filled);
    mutating the returned dict does not affect the live counters.
    """
    with _LOCK:
        out = {key: 0 for key in KNOWN_KEYS}
        out.update(_STATS)
        return out


def reset_resilience_stats() -> None:
    """Zero every counter (tests / fresh monitoring windows)."""
    with _LOCK:
        _STATS.clear()
