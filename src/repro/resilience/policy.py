"""Fault policy: bounded retries, deadlines, and exception classification.

:class:`FaultPolicy` is the single knob bundle for "what happens when a
call fails":

* **Classification** — every exception is either *retryable* (transient
  infrastructure trouble: :class:`~repro.exceptions.TransientError`,
  :class:`~repro.exceptions.ConvergenceError`, connection resets) or
  *fatal* (bad input, bugs, blown deadlines).  Only retryable failures
  are retried; fatal ones propagate immediately.
* **Bounded retry** — up to ``max_retries`` re-attempts with exponential
  backoff and deterministic jitter (hash-of-label, so two processes
  retrying different labels desynchronize without shared RNG state).
* **Deadlines** — :func:`call_with_deadline` runs the callable on a
  daemon watchdog thread and abandons it past the wall-clock budget,
  raising :class:`~repro.exceptions.DeadlineExceededError`.  The
  abandoned thread finishes (or sleeps) in the background; Python cannot
  kill threads, but the *caller* regains control — which is what keeps a
  hung SVT iteration from freezing a whole race.

The policy is a frozen picklable dataclass so it can ride into process
workers alongside the task (ModelRace sends one with every fold batch).
Everything is zero-cost when unused: ``max_retries=0`` and no deadline
make :meth:`FaultPolicy.run` a plain try-free call.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

from repro.exceptions import (
    ConvergenceError,
    DeadlineExceededError,
    TransientError,
    ValidationError,
)
from repro.observability import get_logger, get_metrics
from repro.resilience.stats import tick

_log = get_logger(__name__)

#: Exceptions retried by default — transient by construction or by nature.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientError,
    ConvergenceError,
    ConnectionError,
    BrokenPipeError,
)

#: Exceptions never retried even if a caller widens ``retryable``.
ALWAYS_FATAL: tuple[type[BaseException], ...] = (
    DeadlineExceededError,
    MemoryError,
    KeyboardInterrupt,
    SystemExit,
)


def _uniform_hash(*parts) -> float:
    """Deterministic uniform draw in [0, 1) from arbitrary parts."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def call_with_deadline(fn, seconds: float | None, *, label: str = "call"):
    """Run ``fn()`` with a wall-clock budget of ``seconds``.

    ``None`` or a non-positive budget calls ``fn`` directly (zero cost).
    Otherwise ``fn`` runs on a daemon thread; if it has not finished
    within the budget, a :class:`DeadlineExceededError` is raised and the
    thread is abandoned (it cannot be killed, only orphaned).
    """
    if seconds is None or seconds <= 0:
        return fn()
    box: dict = {}

    def _runner():
        try:
            box["value"] = fn()
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc

    thread = threading.Thread(
        target=_runner, daemon=True, name=f"deadline-{label}"
    )
    thread.start()
    thread.join(seconds)
    if thread.is_alive():
        tick("deadline_hits")
        get_metrics().counter(
            "repro_resilience_deadline_hits_total",
            "Calls abandoned for exceeding their wall-clock deadline",
        ).inc()
        _log.warning("%s exceeded its %.3fs deadline; abandoning", label, seconds)
        raise DeadlineExceededError(
            f"{label} exceeded its {seconds:g}s deadline"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


@dataclass(frozen=True)
class FaultPolicy:
    """How failures are classified, retried, and time-bounded.

    Attributes
    ----------
    max_retries:
        Re-attempts after the first failure (``0`` disables retry).
    backoff_base:
        First backoff sleep in seconds; attempt ``k`` waits
        ``backoff_base * 2**k`` (plus jitter), capped at ``backoff_max``.
    backoff_max:
        Ceiling on a single backoff sleep.
    jitter:
        Fractional jitter added to each sleep (``0.25`` = up to +25%),
        derived deterministically from the call label and attempt.
    eval_deadline:
        Wall-clock seconds allowed per pipeline evaluation (``None`` =
        unbounded).  Enforced by :meth:`run` around the whole attempt.
    impute_deadline:
        Wall-clock seconds allowed per imputation ``_impute`` call
        (``None`` = unbounded); consumed by
        :meth:`repro.imputation.base.BaseImputer.impute`.
    fail_fast:
        Escalate the first *recorded* failure instead of degrading
        (ModelRace raises :class:`~repro.exceptions.EvaluationError`).
    quarantine_threshold:
        Consecutive failures before a :class:`~repro.resilience.CircuitBreaker`
        opens for the failing pipeline / imputer / member.
    retryable:
        Exception types classified as retryable
        (default :data:`DEFAULT_RETRYABLE`).
    """

    max_retries: int = 0
    backoff_base: float = 0.01
    backoff_max: float = 1.0
    jitter: float = 0.25
    eval_deadline: float | None = None
    impute_deadline: float | None = None
    fail_fast: bool = False
    quarantine_threshold: int = 3
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0 or self.jitter < 0:
            raise ValidationError("backoff/jitter values must be >= 0")
        if self.quarantine_threshold < 1:
            raise ValidationError("quarantine_threshold must be >= 1")
        for budget in (self.eval_deadline, self.impute_deadline):
            if budget is not None and budget <= 0:
                raise ValidationError("deadlines must be positive or None")

    # ------------------------------------------------------------------
    def classify(self, exc: BaseException) -> str:
        """``"retryable"`` or ``"fatal"`` for the given exception."""
        if isinstance(exc, ALWAYS_FATAL):
            return "fatal"
        if isinstance(exc, tuple(self.retryable)):
            return "retryable"
        return "fatal"

    def backoff(self, attempt: int, label: str = "call") -> float:
        """Sleep before re-attempt ``attempt`` (0-based), with jitter."""
        base = min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
        return base * (1.0 + self.jitter * _uniform_hash(label, attempt))

    # ------------------------------------------------------------------
    def run(self, fn, *, label: str = "call", deadline: float | None = None):
        """Execute ``fn()`` under this policy.

        Applies the deadline (``deadline`` overrides ``eval_deadline``)
        to every attempt and retries retryable failures up to
        ``max_retries`` times.  The last exception propagates unchanged
        when the budget is exhausted or the failure is fatal.
        """
        budget = deadline if deadline is not None else self.eval_deadline
        attempt = 0
        while True:
            try:
                return call_with_deadline(fn, budget, label=label)
            except Exception as exc:
                if self.classify(exc) == "fatal" or attempt >= self.max_retries:
                    raise
                delay = self.backoff(attempt, label)
                tick("retries")
                get_metrics().counter(
                    "repro_resilience_retries_total",
                    "Retry sleeps performed by FaultPolicy.run",
                ).inc()
                _log.info(
                    "%s failed (%s: %s); retry %d/%d in %.3fs",
                    label,
                    type(exc).__name__,
                    exc,
                    attempt + 1,
                    self.max_retries,
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
