"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule` s, each
targeting a **call site** (``race.evaluate``, ``classifier.fit``,
``imputer.impute``, ``executor.task``, ``ensemble.member``) and
optionally a specific **target** at that site (a classifier family, an
imputer name, a batch label).  The :class:`FaultInjector` evaluates the
plan at every instrumented call site and fires one of four fault kinds:

``raise``
    Raise :class:`~repro.exceptions.InjectedFault` (retryable).
``hang``
    Sleep ``duration`` seconds before proceeding — what a non-converging
    solver or a stuck I/O call looks like from the outside.  Pair with a
    :class:`~repro.resilience.FaultPolicy` deadline to test abandonment.
``nan``
    Return the poison marker so the call site corrupts its own output
    (imputers fill the gap with NaN, ensemble members emit NaN probas);
    exercises the downstream validators instead of the exception path.
``kill``
    Inside a process-pool worker: hard-exit the worker (``os._exit``),
    reproducing a real worker crash.  In the parent process (serial or
    thread backends) it degrades to raising
    :class:`~repro.exceptions.WorkerCrashError` — killing the interpreter
    the tests run in would be a little too chaotic.

Determinism
-----------
Firing decisions are **pure hashes** of ``(seed, rule, site, target,
token)`` — no shared RNG stream — so a plan replays identically across
runs, and across serial/thread/process backends whenever the call site
supplies a stable ``token`` (ModelRace passes ``(iteration, fold)``).
Sites that pass no token fall back to a per-``(rule, site, target)``
invocation counter, which is deterministic for serial execution and
order-dependent (but still seed-stable in aggregate) under threads.

Injectors are picklable (locks are rebuilt on unpickle) so they ride
into process workers; note that each worker then counts firings
independently — ``times``-bounded rules should either use tokens or be
exercised on the serial/thread backends.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import InjectedFault, ValidationError, WorkerCrashError
from repro.observability import get_logger, get_metrics
from repro.resilience.policy import _uniform_hash
from repro.resilience.stats import tick

_log = get_logger(__name__)

#: Legal fault kinds.
FAULT_KINDS = ("raise", "hang", "nan", "kill")

#: Instrumented call sites (informative; unknown sites simply never fire).
KNOWN_SITES = (
    "race.evaluate",
    "classifier.fit",
    "imputer.impute",
    "executor.task",
    "ensemble.member",
    "serving.shard",
)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault plan.

    Attributes
    ----------
    site:
        Call site the rule applies to (see :data:`KNOWN_SITES`).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Firing probability per eligible invocation (1.0 = always).
    match:
        Substring that must appear in ``str(target)`` (``None`` matches
        every target at the site).
    times:
        Maximum number of firings for this rule (``None`` = unlimited).
    after:
        Skip the first ``after`` eligible invocations before firing
        (``after=1, times=1`` = "fail exactly the second call").
    duration:
        Sleep seconds for ``hang`` rules.
    message:
        Custom exception text for ``raise`` rules.
    """

    site: str
    kind: str = "raise"
    probability: float = 1.0
    match: str | None = None
    times: int | None = None
    after: int = 0
    duration: float = 30.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError("probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValidationError("times must be >= 1 or None")
        if self.after < 0:
            raise ValidationError("after must be >= 0")
        if self.duration < 0:
            raise ValidationError("duration must be >= 0")

    def applies_to(self, site: str, target) -> bool:
        """Site/target eligibility (ignores counters and probability)."""
        if site != self.site:
            return False
        return self.match is None or self.match in str(target)


@dataclass
class FaultPlan:
    """A named, seeded collection of fault rules."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0
    name: str = "plan"

    def injector(self) -> "FaultInjector":
        """Build a fresh injector executing this plan."""
        return FaultInjector(self.rules, seed=self.seed, name=self.name)


class FaultInjector:
    """Evaluates a fault plan at instrumented call sites.

    Call sites invoke :meth:`check`; the injector either returns ``None``
    (no fault — the overwhelmingly common case), returns ``"nan"``
    (the caller poisons its own output), raises, hangs, or kills the
    worker, per the first matching rule.
    """

    def __init__(self, rules, seed: int = 0, name: str = "injector"):
        self.rules = [self._coerce(rule) for rule in rules]
        self.seed = int(seed)
        self.name = str(name)
        self._fired: dict[int, int] = {}  # rule index -> firings
        self._seen: dict[tuple, int] = {}  # (rule, site, target) -> calls
        self._lock = threading.Lock()

    @staticmethod
    def _coerce(rule) -> FaultRule:
        if isinstance(rule, FaultRule):
            return rule
        if isinstance(rule, dict):
            return FaultRule(**rule)
        raise ValidationError(f"cannot build a FaultRule from {rule!r}")

    # -- pickling (locks do not pickle) --------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def fired(self) -> dict[int, int]:
        """Firing counts per rule index (copy)."""
        with self._lock:
            return dict(self._fired)

    @property
    def n_fired(self) -> int:
        """Total rule firings recorded by this injector instance."""
        with self._lock:
            return sum(self._fired.values())

    # ------------------------------------------------------------------
    def _select(self, site: str, target, token) -> FaultRule | None:
        """First rule that fires for this invocation, updating counters."""
        for index, rule in enumerate(self.rules):
            if not rule.applies_to(site, target):
                continue
            with self._lock:
                if rule.times is not None and self._fired.get(index, 0) >= rule.times:
                    continue
                seen_key = (index, site, str(target))
                seen = self._seen.get(seen_key, 0)
                self._seen[seen_key] = seen + 1
                if seen < rule.after:
                    continue
                if rule.probability < 1.0:
                    draw_token = token if token is not None else seen
                    draw = _uniform_hash(
                        self.seed, index, site, target, draw_token
                    )
                    if draw >= rule.probability:
                        continue
                self._fired[index] = self._fired.get(index, 0) + 1
            return rule
        return None

    def check(self, site: str, target, token=None) -> str | None:
        """Evaluate the plan for one invocation of ``site`` on ``target``.

        Returns ``None`` (proceed normally) or ``"nan"`` (caller must
        poison its output); raises / hangs / kills for the other kinds.
        ``token`` is optional stable invocation context (e.g.
        ``(iteration, fold)``) that makes probability draws independent
        of execution order.
        """
        rule = self._select(site, target, token)
        if rule is None:
            return None
        tick("faults_injected")
        get_metrics().counter(
            "repro_resilience_faults_injected_total",
            "Fault-plan rules fired",
            labels={"site": site, "kind": rule.kind},
        ).inc()
        _log.info(
            "%s: injecting %s at %s:%s (token=%r)",
            self.name, rule.kind, site, target, token,
        )
        if rule.kind == "hang":
            time.sleep(rule.duration)
            return None
        if rule.kind == "nan":
            return "nan"
        if rule.kind == "kill":
            if multiprocessing.parent_process() is not None:
                # Real crash: hard-exit the pool worker without cleanup.
                os._exit(23)
            raise WorkerCrashError(
                rule.message or f"injected worker crash at {site}:{target}"
            )
        raise InjectedFault(
            rule.message or f"injected fault at {site}:{target}"
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.name!r}, seed={self.seed}, "
            f"rules={len(self.rules)}, fired={self.n_fired})"
        )
