"""repro.resilience — fault policies, quarantine, and chaos injection.

The survival layer of the reproduction.  A-DARTS's value proposition is
*stable* model selection, so a single diverging solver, crashed worker,
or degenerate input must cost one pipeline — never a whole race or a
serving request.  Four cooperating pieces:

* :class:`FaultPolicy` — bounded retry with exponential backoff and
  deterministic jitter, per-evaluation / per-imputation wall-clock
  deadlines, and retryable-vs-fatal exception classification;
* :class:`CircuitBreaker` — consecutive-failure quarantine so repeat
  offenders (pipelines, imputers, ensemble members) are pruned instead
  of re-failing forever;
* :class:`FaultInjector` / :class:`FaultPlan` / :class:`FaultRule` —
  seeded, deterministic chaos: raise / hang / NaN-poison / worker-kill
  faults targeted at specific call sites, pluggable into the execution
  engine, ModelRace, the imputer registry, and the voting ensemble;
* process-level context (:func:`use_fault_policy`,
  :func:`use_fault_injector`) and counters
  (:func:`resilience_stats`) surfaced by the serving health document.

Everything is zero-dependency and zero-cost when disabled: with no
policy or injector installed every instrumented call site pays a single
``is None`` check.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.context import (
    get_fault_injector,
    get_fault_policy,
    set_fault_injector,
    set_fault_policy,
    use_fault_injector,
    use_fault_policy,
)
from repro.resilience.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KNOWN_SITES,
)
from repro.resilience.policy import (
    ALWAYS_FATAL,
    DEFAULT_RETRYABLE,
    FaultPolicy,
    call_with_deadline,
)
from repro.resilience.stats import (
    resilience_stats,
    reset_resilience_stats,
)

__all__ = [
    "ALWAYS_FATAL",
    "CircuitBreaker",
    "DEFAULT_RETRYABLE",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPolicy",
    "FaultRule",
    "KNOWN_SITES",
    "call_with_deadline",
    "get_fault_injector",
    "get_fault_policy",
    "resilience_stats",
    "reset_resilience_stats",
    "set_fault_injector",
    "set_fault_policy",
    "use_fault_injector",
    "use_fault_policy",
]
