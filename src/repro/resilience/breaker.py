"""Circuit breaker: quarantine repeatedly failing components.

A :class:`CircuitBreaker` tracks *consecutive* failures per key (a
pipeline ``config_key()``, an imputer name, an ensemble member index —
any hashable).  Once a key fails ``threshold`` times in a row its
circuit **opens**: callers should skip the component (ModelRace prunes
the pipeline; the voting ensemble drops the member) instead of paying
for — or crashing on — the next failure.

By default an open circuit stays open for the breaker's lifetime, which
is the deterministic choice inside a race (a quarantined pipeline never
silently rejoins and perturbs the surviving set).  Long-lived serving
breakers may pass ``reset_after`` seconds to re-arm ("half-open"): the
next call after the cooldown is allowed through, and its outcome closes
or re-opens the circuit.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import ValidationError
from repro.observability import get_logger, get_metrics
from repro.resilience.stats import tick

_log = get_logger(__name__)


class CircuitBreaker:
    """Consecutive-failure quarantine with optional timed re-arm.

    Parameters
    ----------
    threshold:
        Consecutive failures that open a key's circuit.
    reset_after:
        Seconds after which an open circuit lets one probe call through
        (``None`` — the default — keeps it open forever).
    name:
        Label used in logs/metrics (``scope`` label on the counters).
    """

    def __init__(
        self,
        threshold: int = 3,
        *,
        reset_after: float | None = None,
        name: str = "breaker",
    ):
        if threshold < 1:
            raise ValidationError("threshold must be >= 1")
        if reset_after is not None and reset_after <= 0:
            raise ValidationError("reset_after must be positive or None")
        self.threshold = int(threshold)
        self.reset_after = reset_after
        self.name = str(name)
        self._failures: dict = {}  # key -> consecutive failure count
        self._opened_at: dict = {}  # key -> monotonic open time
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record_failure(self, key, error: str | None = None) -> bool:
        """Record one failure for ``key``; returns True if it just opened."""
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            already_open = key in self._opened_at
            opened = count >= self.threshold and not already_open
            if opened:
                self._opened_at[key] = time.monotonic()
        if opened:
            tick("quarantines")
            get_metrics().counter(
                "repro_resilience_quarantines_total",
                "Circuit breakers tripped open",
                labels={"scope": self.name},
            ).inc()
            _log.warning(
                "%s: quarantined %r after %d consecutive failures%s",
                self.name,
                key,
                self.threshold,
                f" ({error})" if error else "",
            )
        return opened

    def record_success(self, key) -> None:
        """A clean call: reset the key's failure streak and close it."""
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)

    def is_open(self, key) -> bool:
        """Whether calls for ``key`` should currently be skipped."""
        with self._lock:
            opened_at = self._opened_at.get(key)
            if opened_at is None:
                return False
            if (
                self.reset_after is not None
                and time.monotonic() - opened_at >= self.reset_after
            ):
                # Half-open: allow one probe; keep the streak so a single
                # failure re-opens immediately.
                self._opened_at.pop(key, None)
                self._failures[key] = self.threshold - 1
                return False
            return True

    # ------------------------------------------------------------------
    def failures(self, key) -> int:
        """Current consecutive-failure streak for ``key``."""
        with self._lock:
            return self._failures.get(key, 0)

    def open_keys(self) -> list:
        """Keys whose circuits are currently open (sorted by repr)."""
        with self._lock:
            keys = list(self._opened_at)
        return sorted((k for k in keys if self.is_open(k)), key=repr)

    @property
    def n_open(self) -> int:
        """Number of currently open circuits."""
        return len(self.open_keys())

    def reset(self) -> None:
        """Close every circuit and forget all streaks."""
        with self._lock:
            self._failures.clear()
            self._opened_at.clear()

    # -- picklability (locks don't pickle) ------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, threshold={self.threshold}, "
            f"open={self.n_open})"
        )
