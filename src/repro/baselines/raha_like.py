"""RAHA-style selector: per-feature-cluster classifiers with ranked output.

RAHA (Mahdavi et al., SIGMOD'19) clusters similar data columns and trains a
separate classifier per cluster on a labeled fraction.  Adapted to our task
(as the paper does in Section III): training samples are k-means-clustered
in feature space; each cluster trains its own classifier on its labeled
members; a test sample is routed to its nearest cluster's classifier.  Being
probability-based, RAHA can rank algorithms — the only baseline with MRR.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineSelector
from repro.classifiers import get_classifier
from repro.utils.rng import ensure_rng


class _ClusteredModel:
    """Router + per-cluster classifiers (the object RAHA's search returns)."""

    def __init__(self, centers, models, classes, fallback):
        self._centers = centers
        self._models = models
        self.classes_ = classes
        self._fallback = fallback

    def _route(self, X: np.ndarray) -> np.ndarray:
        d = ((X[:, None, :] - self._centers[None, :, :]) ** 2).sum(axis=2)
        return d.argmin(axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        routes = self._route(X)
        out = np.zeros((X.shape[0], len(self.classes_)))
        col_of = {c: j for j, c in enumerate(self.classes_.tolist())}
        for cluster_id in np.unique(routes):
            rows = np.flatnonzero(routes == cluster_id)
            model = self._models.get(int(cluster_id), self._fallback)
            proba = model.predict_proba(X[rows])
            for j, cls in enumerate(model.classes_.tolist()):
                out[np.ix_(rows, [col_of[cls]])] += proba[:, [j]]
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class RAHASelector(BaselineSelector):
    """Per-cluster classifiers in feature space.

    Parameters
    ----------
    n_clusters:
        Number of feature-space clusters.
    family:
        Classifier family trained per cluster (RAHA uses simple bases).
    label_fraction:
        Fraction of each cluster's samples used for training ("user labels"
        in the original system are expensive, so RAHA trains on a fraction).
    """

    name = "RAHA"
    supports_ranking = True

    def __init__(
        self,
        n_clusters: int = 4,
        family: str = "gaussian_nb",
        label_fraction: float = 0.6,
        validation_ratio: float = 0.25,
        random_state: int | None = 0,
    ):
        super().__init__(validation_ratio=validation_ratio, random_state=random_state)
        self.n_clusters = int(n_clusters)
        self.family = str(family)
        self.label_fraction = float(label_fraction)

    def _kmeans(self, X: np.ndarray, k: int, rng) -> tuple[np.ndarray, np.ndarray]:
        # Standardize for distance sanity.
        mu, sigma = X.mean(axis=0), X.std(axis=0)
        sigma[sigma == 0] = 1.0
        Z = (X - mu) / sigma
        centers = Z[rng.choice(Z.shape[0], size=min(k, Z.shape[0]), replace=False)]
        assign = np.zeros(Z.shape[0], dtype=int)
        for _ in range(25):
            d = ((Z[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_assign = d.argmin(axis=1)
            if (new_assign == assign).all():
                break
            assign = new_assign
            for c in range(centers.shape[0]):
                members = Z[assign == c]
                if members.shape[0]:
                    centers[c] = members.mean(axis=0)
        # Return centers in the original feature space for routing.
        return centers * sigma + mu, assign

    def _search(self, X: np.ndarray, y: np.ndarray):
        rng = ensure_rng(self.random_state)
        centers, assign = self._kmeans(X, self.n_clusters, rng)
        fallback = get_classifier(self.family)
        fallback.fit(X, y)
        models: dict[int, object] = {}
        for cluster_id in np.unique(assign):
            rows = np.flatnonzero(assign == cluster_id)
            take = max(2, int(round(self.label_fraction * rows.size)))
            picked = rng.choice(rows, size=min(take, rows.size), replace=False)
            if np.unique(y[picked]).size < 1 or picked.size < 2:
                continue
            model = get_classifier(self.family)
            try:
                model.fit(X[picked], y[picked])
            except Exception:
                continue
            models[int(cluster_id)] = model
        return _ClusteredModel(centers, models, np.unique(y), fallback)
