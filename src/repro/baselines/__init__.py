"""Scoped reimplementations of the comparator AutoML systems (Section III).

The real frameworks cannot be installed offline; these classes reimplement
the *selection semantics* that Table I attributes to each system — which is
exactly the mechanism the paper credits for their instability:

* :class:`FLAMLSelector` — multiple classifier families, cost-frugal search,
  but a **single winner** and discarding a family discards all its variants;
* :class:`TuneSelector` — **one** hand-picked classifier family, successive
  halving over pre-generated configurations;
* :class:`AutoFolioSelector` — one classifier, single-parameter
  perturbations evaluated over data partitions;
* :class:`RAHASelector` — per-feature-cluster classifiers with ranked
  output (the only baseline that reports MRR).

None of them search feature scalers, keep multiple instances of the same
family, or vote across winners.
"""

from repro.baselines.base import BaselineSelector
from repro.baselines.flaml_like import FLAMLSelector
from repro.baselines.tune_like import TuneSelector
from repro.baselines.autofolio_like import AutoFolioSelector
from repro.baselines.raha_like import RAHASelector

__all__ = [
    "BaselineSelector",
    "FLAMLSelector",
    "TuneSelector",
    "AutoFolioSelector",
    "RAHASelector",
]
