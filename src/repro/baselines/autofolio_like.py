"""AutoFolio-style selector: single-parameter perturbation over partitions.

Mirrors the documented behaviour (Section III): random seed configurations
of a single classifier are perturbed *one parameter at a time*; each updated
configuration is evaluated on several data partitions; configurations that
do not improve are discarded and the best average performer wins.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineSelector
from repro.classifiers import get_classifier
from repro.classifiers.spaces import param_space, sample_params
from repro.datasets.splits import stratified_kfold
from repro.utils.rng import ensure_rng


class AutoFolioSelector(BaselineSelector):
    """One-parameter-at-a-time configuration of one classifier family.

    Parameters
    ----------
    family:
        The single classifier family to configure.
    n_seeds:
        Number of random starting configurations.
    n_perturbations:
        Perturbation rounds per seed.
    n_partitions:
        Cross-validation partitions per evaluation.
    """

    name = "AutoFolio"
    supports_ranking = False

    def __init__(
        self,
        family: str = "decision_tree",
        n_seeds: int = 4,
        n_perturbations: int = 6,
        n_partitions: int = 3,
        validation_ratio: float = 0.25,
        random_state: int | None = 0,
    ):
        super().__init__(validation_ratio=validation_ratio, random_state=random_state)
        self.family = str(family)
        self.n_seeds = int(n_seeds)
        self.n_perturbations = int(n_perturbations)
        self.n_partitions = int(n_partitions)

    def _avg_partition_score(self, params: dict, X, y, rng) -> float:
        scores = []
        n_splits = min(self.n_partitions, max(2, X.shape[0] // 4))
        try:
            folds = list(stratified_kfold(y, n_splits=n_splits, random_state=rng))
        except Exception:
            return float("-inf")
        for train_idx, test_idx in folds:
            scores.append(
                self._evaluate(
                    self.family, params,
                    X[train_idx], y[train_idx], X[test_idx], y[test_idx],
                )
            )
        return float(np.mean(scores)) if scores else float("-inf")

    def _perturb(self, params: dict, rng) -> dict:
        space = param_space(self.family)
        mutable = [k for k, v in space.items() if len(v) > 1]
        if not mutable:
            return dict(params)
        key = mutable[int(rng.integers(0, len(mutable)))]
        values = [v for v in space[key] if v != params.get(key)]
        out = dict(params)
        out[key] = values[int(rng.integers(0, len(values)))]
        return out

    def _search(self, X: np.ndarray, y: np.ndarray):
        rng = ensure_rng(self.random_state)
        best_params, best_score = None, float("-inf")
        for _ in range(self.n_seeds):
            params = sample_params(self.family, random_state=rng)
            score = self._avg_partition_score(params, X, y, rng)
            for _ in range(self.n_perturbations):
                candidate = self._perturb(params, rng)
                cand_score = self._avg_partition_score(candidate, X, y, rng)
                # Configurations that do not improve are discarded.
                if cand_score > score:
                    params, score = candidate, cand_score
            if score > best_score:
                best_params, best_score = params, score
        winner = get_classifier(self.family, **(best_params or {}))
        winner.fit(X, y)
        return winner
