"""FLAML-style selector: cost-frugal multi-family search, single winner.

Mirrors the documented FLAML behaviour (Section III): configurations are
generated on the fly per classifier family, training samples grow when the
cost/error trend justifies it, and — crucially — *a family discarded early
never comes back*, and exactly one configuration wins.  No scaler search.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineSelector
from repro.classifiers import get_classifier
from repro.classifiers.spaces import default_params, param_space
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

#: Families FLAML races by default (its classic learner list, mapped to ours).
_DEFAULT_FAMILIES = (
    "knn",
    "decision_tree",
    "random_forest",
    "extra_trees",
    "gradient_boosting",
    "softmax",
)


class FLAMLSelector(BaselineSelector):
    """Cost-frugal AutoML with one winning pipeline.

    Parameters
    ----------
    families:
        Classifier families to race.
    n_rounds:
        Search rounds; each round tries one mutation of the current best
        config of the most promising family.
    sample_schedule:
        Growing training-sample fractions (FLAML's resource schedule).
    time_weight:
        Weight of normalized runtime in the cost ( cost = (1 - F1) +
        time_weight * norm_time ).
    """

    name = "FLAML"
    supports_ranking = False

    def __init__(
        self,
        families=_DEFAULT_FAMILIES,
        n_rounds: int = 24,
        sample_schedule=(0.4, 0.7, 1.0),
        time_weight: float = 0.1,
        validation_ratio: float = 0.25,
        random_state: int | None = 0,
    ):
        super().__init__(validation_ratio=validation_ratio, random_state=random_state)
        self.families = tuple(families)
        self.n_rounds = int(n_rounds)
        self.sample_schedule = tuple(sample_schedule)
        self.time_weight = float(time_weight)

    def _mutate(self, family: str, params: dict, rng) -> dict:
        space = param_space(family)
        mutable = [k for k, v in space.items() if len(v) > 1]
        if not mutable:
            return dict(params)
        key = mutable[int(rng.integers(0, len(mutable)))]
        values = space[key]
        current = params.get(key)
        if current in values:
            idx = values.index(current)
            choices = [i for i in (idx - 1, idx + 1) if 0 <= i < len(values)]
            new = values[choices[int(rng.integers(0, len(choices)))]]
        else:
            new = values[int(rng.integers(0, len(values)))]
        out = dict(params)
        out[key] = new
        return out

    def _cost(self, family: str, params: dict, X_tr, y_tr, X_va, y_va,
              time_scale: float) -> tuple[float, float]:
        timer = Timer()
        try:
            with timer:
                model = get_classifier(family, **params)
                model.fit(X_tr, y_tr)
                pred = model.predict(X_va)
        except Exception:
            return float("inf"), 0.0
        from repro.pipeline.metrics import f1_weighted

        f1 = f1_weighted(y_va, pred)
        norm_time = min(1.0, timer.elapsed / max(time_scale, 1e-9))
        return (1.0 - f1) + self.time_weight * norm_time, timer.elapsed

    def _search(self, X: np.ndarray, y: np.ndarray):
        rng = ensure_rng(self.random_state)
        X_tr, X_va, y_tr, y_va = self._validation_split(X, y)
        n = X_tr.shape[0]
        # State per family: (best_cost, best_params); families get discarded
        # when their cost stagnates versus the global best.
        state: dict[str, dict] = {
            fam: {"params": default_params(fam), "cost": np.inf}
            for fam in self.families
        }
        time_scale = 1.0
        alive = set(self.families)
        schedule = list(self.sample_schedule)
        rounds_per_stage = max(1, self.n_rounds // len(schedule))
        round_idx = 0
        for frac in schedule:
            size = max(4, int(frac * n))
            idx = rng.permutation(n)[:size]
            Xs, ys = X_tr[idx], y_tr[idx]
            for _ in range(rounds_per_stage):
                if not alive:
                    break
                round_idx += 1
                # Pick the most promising family (lowest cost; unseen first).
                fam = min(alive, key=lambda f: state[f]["cost"])
                candidate = (
                    state[fam]["params"]
                    if not np.isfinite(state[fam]["cost"])
                    else self._mutate(fam, state[fam]["params"], rng)
                )
                cost, elapsed = self._cost(
                    fam, candidate, Xs, ys, X_va, y_va, time_scale
                )
                time_scale = max(time_scale, elapsed)
                if cost < state[fam]["cost"]:
                    state[fam] = {"params": candidate, "cost": cost}
                # FLAML-style elimination: a family far behind the global
                # best is discarded — along with all its future variants.
                global_best = min(s["cost"] for s in state.values())
                for f in list(alive):
                    if (
                        np.isfinite(state[f]["cost"])
                        and state[f]["cost"] > global_best + 0.25
                        and len(alive) > 1
                    ):
                        alive.discard(f)
        best_family = min(state, key=lambda f: state[f]["cost"])
        winner = get_classifier(best_family, **state[best_family]["params"])
        winner.fit(X, y)
        return winner
