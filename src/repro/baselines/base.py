"""Common interface of the baseline model selectors."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.classifiers import get_classifier
from repro.datasets.splits import holdout_split
from repro.exceptions import NotFittedError, ValidationError
from repro.pipeline.metrics import f1_weighted


class BaselineSelector(ABC):
    """A model selector: fit on labeled features, predict imputer labels.

    Subclasses implement :meth:`_search`, returning the winning fitted
    model; the base class handles validation splits and the predict API.

    Attributes
    ----------
    name:
        Display name used in experiment tables.
    supports_ranking:
        Whether :meth:`predict_rankings` returns meaningful rankings (only
        RAHA among the baselines; see Table III's MRR column).
    """

    name: str = "baseline"
    supports_ranking: bool = False

    def __init__(self, validation_ratio: float = 0.25, random_state: int | None = 0):
        if not 0 < validation_ratio < 1:
            raise ValidationError(
                f"validation_ratio must be in (0, 1), got {validation_ratio}"
            )
        self.validation_ratio = float(validation_ratio)
        self.random_state = random_state
        self._model = None

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "BaselineSelector":
        """Run the selector's search and keep the winning model."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValidationError("X and y disagree on sample count")
        self._model = self._search(X, y)
        if self._model is None:
            raise ValidationError(f"{self.name}: search produced no model")
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted imputer labels."""
        if self._model is None:
            raise NotFittedError(f"{self.name} is not fitted")
        return self._model.predict(np.asarray(X, dtype=float))

    def predict_rankings(self, X) -> list[list]:
        """Per-sample label rankings (meaningful only if supports_ranking)."""
        if self._model is None:
            raise NotFittedError(f"{self.name} is not fitted")
        proba = self._model.predict_proba(np.asarray(X, dtype=float))
        classes = self._model.classes_
        order = np.argsort(proba, axis=1)[:, ::-1]
        return [[classes[j] for j in row] for row in order]

    # ------------------------------------------------------------------
    @abstractmethod
    def _search(self, X: np.ndarray, y: np.ndarray):
        """Return the winning model, fitted on all of (X, y)."""

    # Shared utilities -------------------------------------------------
    def _validation_split(self, X: np.ndarray, y: np.ndarray):
        return holdout_split(
            X, y, test_ratio=self.validation_ratio,
            random_state=self.random_state,
        )

    @staticmethod
    def _evaluate(classifier_name: str, params: dict, X_tr, y_tr, X_va, y_va) -> float:
        """Validation F1 of one configuration; -inf if it crashes."""
        try:
            model = get_classifier(classifier_name, **params)
            model.fit(X_tr, y_tr)
            return f1_weighted(y_va, model.predict(X_va))
        except Exception:
            return float("-inf")
