"""Tune-style selector: successive halving over one classifier family.

Mirrors the documented behaviour (Section III): the user hand-picks a single
classifier; a large set of random configurations is pre-generated; each
bracket evaluates all survivors on a uniform budget and discards the worst
half until one configuration remains.  Fast, but blind to every other
family and to feature scaling.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineSelector
from repro.classifiers import get_classifier
from repro.classifiers.spaces import sample_params
from repro.utils.rng import ensure_rng


class TuneSelector(BaselineSelector):
    """Successive halving (Hyperband-lite) over one family.

    Parameters
    ----------
    family:
        The single classifier family to tune.
    n_configs:
        Size of the pre-generated random configuration set.
    """

    name = "Tune"
    supports_ranking = False

    def __init__(
        self,
        family: str = "random_forest",
        n_configs: int = 16,
        validation_ratio: float = 0.25,
        random_state: int | None = 0,
    ):
        super().__init__(validation_ratio=validation_ratio, random_state=random_state)
        self.family = str(family)
        self.n_configs = int(n_configs)

    def _search(self, X: np.ndarray, y: np.ndarray):
        rng = ensure_rng(self.random_state)
        X_tr, X_va, y_tr, y_va = self._validation_split(X, y)
        configs = [
            sample_params(self.family, random_state=rng)
            for _ in range(self.n_configs)
        ]
        # Deduplicate pre-generated configs.
        unique, seen = [], set()
        for cfg in configs:
            key = tuple(sorted((k, str(v)) for k, v in cfg.items()))
            if key not in seen:
                seen.add(key)
                unique.append(cfg)
        configs = unique
        n = X_tr.shape[0]
        budget_frac = 0.3
        while len(configs) > 1:
            size = max(4, int(budget_frac * n))
            idx = rng.permutation(n)[:size]
            scored = [
                (
                    self._evaluate(self.family, cfg, X_tr[idx], y_tr[idx], X_va, y_va),
                    pos,
                )
                for pos, cfg in enumerate(configs)
            ]
            scored.sort(reverse=True)
            keep = max(1, len(configs) // 2)
            configs = [configs[pos] for _, pos in scored[:keep]]
            budget_frac = min(1.0, budget_frac * 2)
        winner = get_classifier(self.family, **configs[0])
        winner.fit(X, y)
        return winner
