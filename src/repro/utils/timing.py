"""Lightweight wall-clock timing used by pipeline scoring and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     sum(range(10))
    45
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        """Begin (or restart) timing outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed
