"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state`` that may
be ``None``, an integer seed, or a :class:`numpy.random.Generator`.  These
helpers normalize that input so components never touch global numpy state.
"""

from __future__ import annotations

import numpy as np

RandomState = "int | np.random.Generator | None"


def ensure_rng(random_state: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given state.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, int, or numpy Generator, got {type(random_state)!r}"
    )


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are independent of one another and of further use of the parent,
    which makes parallel or re-entrant components reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
