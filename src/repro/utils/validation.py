"""Input validation helpers shared across the library.

These functions normalize user input into float ``ndarray``s and raise
:class:`~repro.exceptions.ValidationError` with actionable messages.  NaN is
the library-wide missing-value marker, so "finite" checks explicitly state
whether NaN is permitted.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_1d(values, name: str = "values", allow_nan: bool = True) -> np.ndarray:
    """Coerce ``values`` to a 1-D float array.

    Parameters
    ----------
    values:
        Array-like input.
    name:
        Name used in error messages.
    allow_nan:
        When ``False``, reject arrays containing NaN.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.isinf(arr).any():
        raise ValidationError(f"{name} contains infinite values")
    if not allow_nan and np.isnan(arr).any():
        raise ValidationError(f"{name} contains NaN but NaN is not allowed here")
    return arr


def check_2d(values, name: str = "values", allow_nan: bool = True) -> np.ndarray:
    """Coerce ``values`` to a 2-D float array (rows = observations)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.isinf(arr).any():
        raise ValidationError(f"{name} contains infinite values")
    if not allow_nan and np.isnan(arr).any():
        raise ValidationError(f"{name} contains NaN but NaN is not allowed here")
    return arr


def check_finite(arr: np.ndarray, name: str = "values") -> np.ndarray:
    """Require a fully finite array (no NaN, no inf)."""
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} must be fully finite (no NaN/inf)")
    return arr


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Require a positive (or non-negative when ``strict=False``) scalar."""
    value = float(value)
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Require a scalar in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value
