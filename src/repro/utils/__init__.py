"""Shared low-level helpers: RNG handling, validation, timing, statistics."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_finite,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_1d",
    "check_2d",
    "check_finite",
    "check_positive",
    "check_probability",
]
