"""Time-series substrate: containers, missing-block injection, similarity."""

from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.timeseries.missing import (
    MissingBlockSpec,
    inject_missing_block,
    inject_missing_blocks,
    inject_mcar,
    inject_tip_block,
    missing_mask,
    missing_ratio,
)
from repro.timeseries.correlation import (
    cross_correlation,
    max_cross_correlation,
    pairwise_correlation_matrix,
    pairwise_correlation_matrix_reference,
    average_pairwise_correlation,
    shape_based_distance,
    sbd_distance_matrix,
    sbd_distance_matrix_reference,
)
from repro.timeseries.batch import SeriesBank, ncc_cross, znorm_rows

__all__ = [
    "SeriesBank",
    "ncc_cross",
    "znorm_rows",
    "pairwise_correlation_matrix_reference",
    "sbd_distance_matrix_reference",
    "TimeSeries",
    "TimeSeriesDataset",
    "MissingBlockSpec",
    "inject_missing_block",
    "inject_missing_blocks",
    "inject_mcar",
    "inject_tip_block",
    "missing_mask",
    "missing_ratio",
    "cross_correlation",
    "max_cross_correlation",
    "pairwise_correlation_matrix",
    "average_pairwise_correlation",
    "shape_based_distance",
    "sbd_distance_matrix",
]
