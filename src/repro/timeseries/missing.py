"""Missing-block injection for building labeled training data.

The paper evaluates imputation on synthetic missing *blocks* of varying size
and position (ImputeBench missingness patterns).  This module implements the
patterns used by the experiments:

* a single contiguous block at a chosen or random position,
* multiple disjoint blocks,
* a block at the tip of the series (used by the downstream forecasting
  experiment, Fig. 12),
* MCAR point-wise missingness as a degenerate case.

All functions are pure: they take a complete :class:`TimeSeries` and return a
new series with NaNs injected, never mutating the input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeries
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class MissingBlockSpec:
    """Description of one injected missing block.

    Attributes
    ----------
    start:
        Index of the first missing observation.
    length:
        Number of consecutive missing observations.
    """

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValidationError(f"block start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ValidationError(f"block length must be > 0, got {self.length}")

    @property
    def stop(self) -> int:
        """Index one past the last missing observation."""
        return self.start + self.length


def missing_mask(series: TimeSeries) -> np.ndarray:
    """Boolean mask that is True where ``series`` is missing."""
    return series.mask


def missing_ratio(series: TimeSeries) -> float:
    """Fraction of missing values in ``series``."""
    return series.missing_ratio


def inject_missing_block(
    series: TimeSeries,
    ratio: float | None = None,
    length: int | None = None,
    start: int | None = None,
    random_state=None,
) -> tuple[TimeSeries, MissingBlockSpec]:
    """Inject one contiguous missing block.

    Exactly one of ``ratio`` (fraction of the series length) or ``length``
    (absolute size) must be provided.  When ``start`` is ``None`` the block
    position is drawn uniformly from valid offsets, avoiding the first and
    last observation so every algorithm has at least one anchor on each side.

    Returns
    -------
    (faulty, spec):
        The new series with NaNs, and the spec of the injected block.
    """
    n = len(series)
    if (ratio is None) == (length is None):
        raise ValidationError("provide exactly one of ratio or length")
    if ratio is not None:
        check_probability(ratio, name="ratio")
        length = max(1, int(round(ratio * n)))
    assert length is not None
    if length >= n:
        raise ValidationError(
            f"block length {length} must be smaller than series length {n}"
        )
    if start is None:
        rng = ensure_rng(random_state)
        lo, hi = 1, n - length - 1
        if hi < lo:
            # Series too short to keep both anchors; fall back to any offset.
            lo, hi = 0, n - length
        start = int(rng.integers(lo, hi + 1))
    if start + length > n:
        raise ValidationError(
            f"block [{start}, {start + length}) does not fit series of length {n}"
        )
    values = series.values.copy()
    values[start : start + length] = np.nan
    spec = MissingBlockSpec(start=start, length=length)
    return series.with_values(values), spec


def inject_missing_blocks(
    series: TimeSeries,
    n_blocks: int,
    ratio: float,
    random_state=None,
) -> tuple[TimeSeries, list[MissingBlockSpec]]:
    """Inject ``n_blocks`` disjoint missing blocks totaling ``ratio`` of the series.

    Blocks are placed greedily at random non-overlapping positions; a
    :class:`ValidationError` is raised if the series is too short to host all
    blocks disjointly.
    """
    if n_blocks <= 0:
        raise ValidationError(f"n_blocks must be > 0, got {n_blocks}")
    check_probability(ratio, name="ratio")
    n = len(series)
    per_block = max(1, int(round(ratio * n / n_blocks)))
    if per_block * n_blocks >= n:
        raise ValidationError(
            f"cannot place {n_blocks} blocks of {per_block} points in a "
            f"series of length {n}"
        )
    rng = ensure_rng(random_state)
    values = series.values.copy()
    taken = np.zeros(n, dtype=bool)
    specs: list[MissingBlockSpec] = []
    max_attempts = 200 * n_blocks
    attempts = 0
    while len(specs) < n_blocks:
        attempts += 1
        if attempts > max_attempts:
            raise ValidationError(
                "could not place all missing blocks disjointly; "
                "lower ratio or n_blocks"
            )
        start = int(rng.integers(1, max(2, n - per_block - 1)))
        window = slice(max(0, start - 1), min(n, start + per_block + 1))
        if taken[window].any():
            continue
        taken[start : start + per_block] = True
        values[start : start + per_block] = np.nan
        specs.append(MissingBlockSpec(start=start, length=per_block))
    specs.sort(key=lambda s: s.start)
    return series.with_values(values), specs


def inject_tip_block(
    series: TimeSeries, ratio: float = 0.2
) -> tuple[TimeSeries, MissingBlockSpec]:
    """Remove the final ``ratio`` fraction of the series (Fig. 12 setup).

    The downstream forecasting experiment creates "random blocks at the tip
    of each time series with the size of 20%".
    """
    check_probability(ratio, name="ratio")
    n = len(series)
    length = max(1, int(round(ratio * n)))
    if length >= n:
        raise ValidationError(f"tip block of ratio {ratio} would erase the series")
    start = n - length
    values = series.values.copy()
    values[start:] = np.nan
    return series.with_values(values), MissingBlockSpec(start=start, length=length)


def inject_mcar(
    series: TimeSeries, ratio: float, random_state=None
) -> tuple[TimeSeries, np.ndarray]:
    """Inject point-wise missing-completely-at-random values.

    Returns the faulty series and the boolean injection mask.  At least one
    observation is always kept.
    """
    check_probability(ratio, name="ratio")
    n = len(series)
    rng = ensure_rng(random_state)
    n_missing = min(n - 1, int(round(ratio * n)))
    idx = rng.choice(n, size=n_missing, replace=False)
    values = series.values.copy()
    values[idx] = np.nan
    mask = np.zeros(n, dtype=bool)
    mask[idx] = True
    return series.with_values(values), mask
