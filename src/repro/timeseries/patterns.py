"""Missing-pattern detection (the paper's stated future-work extension).

The conclusion of the paper proposes "novel techniques that would
automatically detect the types of missing patterns and include them as
additional features to the recommendation process".  This module implements
that extension: a faulty series' missingness is classified into one of the
ImputeBench-style patterns and summarized as a small numeric feature vector
that :class:`~repro.features.FeatureExtractor` can append.

Patterns
--------
* ``complete``  — no missing values;
* ``single_block`` — one contiguous gap in the interior;
* ``tip_block`` — one gap touching the end of the series (the forecasting
  scenario of Fig. 12);
* ``head_block`` — one gap touching the start;
* ``multi_block`` — several disjoint gaps, each longer than a point or two;
* ``scattered`` — many short gaps (MCAR-like point-wise missingness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timeseries.series import TimeSeries

PATTERN_NAMES: tuple[str, ...] = (
    "complete",
    "single_block",
    "tip_block",
    "head_block",
    "multi_block",
    "scattered",
)


@dataclass(frozen=True)
class MissingPattern:
    """Classification of a series' missingness.

    Attributes
    ----------
    kind:
        One of :data:`PATTERN_NAMES`.
    n_blocks:
        Number of contiguous missing runs.
    missing_ratio:
        Fraction of missing observations.
    max_block_ratio:
        Longest run length divided by series length.
    mean_block_length:
        Average run length (0 when complete).
    relative_position:
        Center of missing mass in [0, 1] (0.5 when complete).
    """

    kind: str
    n_blocks: int
    missing_ratio: float
    max_block_ratio: float
    mean_block_length: float
    relative_position: float


def detect_missing_pattern(series: TimeSeries) -> MissingPattern:
    """Classify the missingness pattern of one series."""
    n = len(series)
    blocks = series.missing_blocks()
    if not blocks:
        return MissingPattern("complete", 0, 0.0, 0.0, 0.0, 0.5)
    lengths = np.array([length for _, length in blocks], dtype=float)
    total_missing = float(lengths.sum())
    max_ratio = float(lengths.max() / n)
    centers = np.array(
        [start + length / 2 for start, length in blocks], dtype=float
    )
    position = float((centers * lengths).sum() / total_missing / n)
    n_blocks = len(blocks)
    start0, len0 = blocks[0]
    if n_blocks == 1:
        if start0 + len0 >= n:
            kind = "tip_block"
        elif start0 == 0:
            kind = "head_block"
        else:
            kind = "single_block"
    elif n_blocks >= 4 and lengths.mean() <= 2.0:
        kind = "scattered"
    else:
        kind = "multi_block"
    return MissingPattern(
        kind=kind,
        n_blocks=n_blocks,
        missing_ratio=total_missing / n,
        max_block_ratio=max_ratio,
        mean_block_length=float(lengths.mean()),
        relative_position=position,
    )


def missing_pattern_features(series) -> dict[str, float]:
    """Numeric feature encoding of the missingness pattern (11 features).

    One-hot pattern kind plus the five scalar descriptors, prefixed
    ``miss_`` so they compose with the statistical/topological names.
    Accepts a :class:`TimeSeries` or a raw array (NaN = missing).
    """
    if not isinstance(series, TimeSeries):
        series = TimeSeries(np.asarray(series, dtype=float))
    pattern = detect_missing_pattern(series)
    feats = {
        f"miss_is_{name}": 1.0 if pattern.kind == name else 0.0
        for name in PATTERN_NAMES
    }
    feats["miss_ratio"] = pattern.missing_ratio
    feats["miss_n_blocks"] = float(np.log1p(pattern.n_blocks))
    feats["miss_max_block_ratio"] = pattern.max_block_ratio
    feats["miss_mean_block_len"] = float(np.log1p(pattern.mean_block_length))
    feats["miss_position"] = pattern.relative_position
    return feats


#: Stable ordering of the missing-pattern feature names.
MISSING_PATTERN_FEATURE_NAMES: tuple[str, ...] = tuple(
    missing_pattern_features(TimeSeries([1.0, 2.0, 3.0])).keys()
)
