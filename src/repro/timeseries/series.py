"""Core containers: :class:`TimeSeries` and :class:`TimeSeriesDataset`.

A :class:`TimeSeries` is an immutable 1-D sequence of float values where NaN
marks missing observations.  A :class:`TimeSeriesDataset` is an ordered,
named collection of series from one source (e.g. one sensor deployment) plus
a category tag used throughout the experiments (Power, Water, ...).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d


class TimeSeries:
    """A single univariate time series with optional missing values.

    Parameters
    ----------
    values:
        Array-like of floats; NaN marks a missing observation.
    name:
        Human-readable identifier.
    metadata:
        Free-form dictionary (e.g. sensor id, units).  Stored by reference.
    """

    __slots__ = ("_values", "name", "metadata")

    def __init__(self, values, name: str = "series", metadata: dict | None = None):
        arr = check_1d(values, name="values", allow_nan=True)
        arr = arr.copy()
        arr.setflags(write=False)
        self._values = arr
        self.name = str(name)
        self.metadata = metadata or {}

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying float array."""
        return self._values

    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index):
        return self._values[index]

    def __repr__(self) -> str:
        return (
            f"TimeSeries(name={self.name!r}, length={len(self)}, "
            f"missing={self.n_missing})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        if len(self) != len(other):
            return False
        a, b = self._values, other._values
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __hash__(self) -> int:
        return hash((self.name, len(self), self._values.tobytes()))

    # ------------------------------------------------------------------
    # Missing-value accounting
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """Boolean array that is True at missing (NaN) positions."""
        return np.isnan(self._values)

    @property
    def n_missing(self) -> int:
        """Number of missing observations."""
        return int(self.mask.sum())

    @property
    def has_missing(self) -> bool:
        """Whether the series contains at least one missing value."""
        return bool(self.mask.any())

    @property
    def missing_ratio(self) -> float:
        """Fraction of missing observations in [0, 1]."""
        return self.n_missing / len(self)

    def missing_blocks(self) -> list[tuple[int, int]]:
        """Return contiguous missing runs as (start, length) pairs."""
        mask = self.mask
        blocks: list[tuple[int, int]] = []
        start = None
        for i, missing in enumerate(mask):
            if missing and start is None:
                start = i
            elif not missing and start is not None:
                blocks.append((start, i - start))
                start = None
        if start is not None:
            blocks.append((start, len(mask) - start))
        return blocks

    # ------------------------------------------------------------------
    # Transformations (all return new objects)
    # ------------------------------------------------------------------
    def with_values(self, values, name: str | None = None) -> "TimeSeries":
        """Return a copy with replaced values (same length not required)."""
        return TimeSeries(values, name=name or self.name, metadata=dict(self.metadata))

    def filled(self, fill_values) -> "TimeSeries":
        """Return a copy where missing positions take values from ``fill_values``.

        ``fill_values`` must have the same length as the series; only entries
        at missing positions are consumed.
        """
        fill = check_1d(fill_values, name="fill_values", allow_nan=True)
        if fill.shape != self._values.shape:
            raise ValidationError(
                f"fill_values length {fill.shape[0]} != series length {len(self)}"
            )
        out = self._values.copy()
        mask = self.mask
        out[mask] = fill[mask]
        return self.with_values(out)

    def zscore(self) -> "TimeSeries":
        """Return a z-normalized copy (NaNs preserved).

        Constant series map to all-zeros rather than dividing by zero.
        """
        observed = self._values[~self.mask]
        if observed.size == 0:
            return self.with_values(self._values)
        mean = float(observed.mean())
        std = float(observed.std())
        if std == 0.0:
            out = np.where(self.mask, np.nan, 0.0)
        else:
            out = (self._values - mean) / std
        return self.with_values(out)

    def interpolated(self) -> "TimeSeries":
        """Return a copy with missing values filled by linear interpolation.

        Leading/trailing gaps are filled by edge extension.  Series with no
        observed values raise :class:`ValidationError`.
        """
        mask = self.mask
        if not mask.any():
            return self.with_values(self._values)
        observed_idx = np.flatnonzero(~mask)
        if observed_idx.size == 0:
            raise ValidationError("cannot interpolate a fully missing series")
        out = self._values.copy()
        out[mask] = np.interp(
            np.flatnonzero(mask), observed_idx, self._values[observed_idx]
        )
        return self.with_values(out)

    def slice(self, start: int, stop: int) -> "TimeSeries":
        """Return the sub-series ``values[start:stop]`` as a new object."""
        if not 0 <= start < stop <= len(self):
            raise ValidationError(
                f"invalid slice [{start}, {stop}) for series of length {len(self)}"
            )
        return self.with_values(self._values[start:stop], name=f"{self.name}[{start}:{stop}]")

    def observed_values(self) -> np.ndarray:
        """Return only the non-missing values, order preserved."""
        return self._values[~self.mask]


class TimeSeriesDataset:
    """An ordered, named collection of :class:`TimeSeries`.

    Parameters
    ----------
    series:
        Iterable of :class:`TimeSeries`.
    name:
        Dataset identifier (e.g. ``"power_uk"``).
    category:
        Domain category tag used by the experiments (e.g. ``"Power"``).
    """

    def __init__(
        self,
        series: Iterable[TimeSeries],
        name: str = "dataset",
        category: str = "unknown",
    ):
        self._series = list(series)
        if not self._series:
            raise ValidationError("dataset must contain at least one series")
        if not all(isinstance(s, TimeSeries) for s in self._series):
            raise ValidationError("all items must be TimeSeries instances")
        self.name = str(name)
        self.category = str(category)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TimeSeriesDataset(
                self._series[index], name=self.name, category=self.category
            )
        return self._series[index]

    def __repr__(self) -> str:
        return (
            f"TimeSeriesDataset(name={self.name!r}, category={self.category!r}, "
            f"n_series={len(self)})"
        )

    @property
    def series(self) -> Sequence[TimeSeries]:
        """The underlying list of series (do not mutate)."""
        return self._series

    @property
    def lengths(self) -> np.ndarray:
        """Array of individual series lengths."""
        return np.array([len(s) for s in self._series], dtype=int)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "TimeSeriesDataset":
        """Return a new dataset containing the series at ``indices``."""
        picked = [self._series[i] for i in indices]
        return TimeSeriesDataset(picked, name=name or self.name, category=self.category)

    def map(self, fn, name: str | None = None) -> "TimeSeriesDataset":
        """Return a new dataset with ``fn`` applied to each series."""
        return TimeSeriesDataset(
            [fn(s) for s in self._series], name=name or self.name, category=self.category
        )

    def to_matrix(self) -> np.ndarray:
        """Stack equal-length series into an (n_series, length) matrix.

        Raises :class:`ValidationError` if the series lengths differ.
        """
        lengths = set(int(x) for x in self.lengths)
        if len(lengths) != 1:
            raise ValidationError(
                f"series must share one length to form a matrix, got lengths {sorted(lengths)}"
            )
        return np.vstack([s.values for s in self._series])

    @classmethod
    def from_matrix(
        cls,
        matrix,
        name: str = "dataset",
        category: str = "unknown",
        prefix: str = "series",
    ) -> "TimeSeriesDataset":
        """Build a dataset from a 2-D array where each row is one series."""
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2:
            raise ValidationError(f"matrix must be 2-D, got shape {arr.shape}")
        series = [
            TimeSeries(row, name=f"{prefix}_{i}") for i, row in enumerate(arr)
        ]
        return cls(series, name=name, category=category)
