"""Similarity measures between time series.

The clustering stage (Section VI) measures similarity by *cross-correlation*;
the K-Shape baseline uses the *shape-based distance* (SBD), i.e. one minus
the maximum normalized cross-correlation over all alignments.  Both are
implemented here on top of FFT-based correlation so matrices over hundreds of
series stay fast.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeries


def _as_clean_array(series) -> np.ndarray:
    """Accept a TimeSeries or array; interpolate away NaNs; return 1-D floats."""
    if isinstance(series, TimeSeries):
        if series.has_missing:
            series = series.interpolated()
        return series.values
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"expected a 1-D series, got shape {arr.shape}")
    if np.isnan(arr).any():
        ts = TimeSeries(arr)
        arr = ts.interpolated().values
    return arr


def _znorm(arr: np.ndarray) -> np.ndarray:
    std = arr.std()
    if std == 0.0:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std


def cross_correlation(a, b) -> float:
    """Zero-lag Pearson correlation between two series.

    Series of different lengths are truncated to the shorter one.  Missing
    values are linearly interpolated first.  Constant series correlate 0 with
    everything (1 with an identical constant series would be undefined).
    """
    x = _as_clean_array(a)
    y = _as_clean_array(b)
    n = min(x.shape[0], y.shape[0])
    x, y = _znorm(x[:n]), _znorm(y[:n])
    if not x.any() or not y.any():
        return 0.0
    return float(np.dot(x, y) / n)


def max_cross_correlation(a, b, max_shift: int | None = None) -> float:
    """Maximum normalized cross-correlation over time shifts (NCCc).

    This is the similarity underlying the shape-based distance of K-Shape:
    ``NCC_c(x, y) = max_w CC_w(x, y) / (||x|| * ||y||)`` computed over all
    circularly padded shifts ``w``.  ``max_shift`` optionally restricts the
    shift range (both directions).

    Series of different lengths are truncated to the shorter one *before*
    z-normalization — the same order as :func:`cross_correlation`.
    (Historically this function z-normed first, so the discarded tail
    leaked into the mean/std of the compared window.)
    """
    x = _as_clean_array(a)
    y = _as_clean_array(b)
    n = min(x.shape[0], y.shape[0])
    x, y = _znorm(x[:n]), _znorm(y[:n])
    denom = np.linalg.norm(x) * np.linalg.norm(y)
    if denom == 0.0:
        return 0.0
    size = 1 << (2 * n - 1).bit_length()
    cc = np.fft.irfft(np.fft.rfft(x, size) * np.conj(np.fft.rfft(y, size)), size)
    # Reorder to shifts -(n-1) .. (n-1).
    cc = np.concatenate((cc[-(n - 1):], cc[:n])) if n > 1 else cc[:1]
    if max_shift is not None:
        center = n - 1
        lo = max(0, center - max_shift)
        hi = min(cc.shape[0], center + max_shift + 1)
        cc = cc[lo:hi]
    return float(cc.max() / denom)


def shape_based_distance(a, b) -> float:
    """Shape-based distance SBD(x, y) = 1 - NCCc(x, y), in [0, 2]."""
    return 1.0 - max_cross_correlation(a, b)


def pairwise_correlation_matrix_reference(
    series_list, shifted: bool = False
) -> np.ndarray:
    """Per-pair reference implementation of the correlation matrix.

    O(n²) scalar loop kept as the semantics-defining path: the batched
    kernels in :mod:`repro.timeseries.batch` are parity-tested (≤ 1e-9)
    against this function.
    """
    arrays = [_as_clean_array(s) for s in series_list]
    n = len(arrays)
    corr = np.eye(n)
    fn = max_cross_correlation if shifted else cross_correlation
    for i in range(n):
        for j in range(i + 1, n):
            corr[i, j] = corr[j, i] = fn(arrays[i], arrays[j])
    return corr


def _equal_length_arrays(series_list) -> list[np.ndarray] | None:
    """Cleaned arrays when all series share one length, else ``None``.

    The batched kernels truncate the whole corpus to the common minimum
    length, whereas the per-pair reference truncates *per pair* — the two
    agree exactly only on equal-length corpora, so mixed-length input
    falls back to the reference loop.
    """
    arrays = [_as_clean_array(s) for s in series_list]
    if not arrays:
        return None
    length = arrays[0].shape[0]
    if length == 0 or any(a.shape[0] != length for a in arrays):
        return None
    return arrays


def pairwise_correlation_matrix(series_list, shifted: bool = False) -> np.ndarray:
    """Symmetric matrix of pairwise correlations.

    Equal-length corpora (the common case — every clustering call site
    truncates first) run through the batched kernels of
    :mod:`repro.timeseries.batch`: one z-norm pass plus a blockwise GEMM
    (zero-lag) or one rFFT per series (shifted), instead of an O(n²)
    Python pair loop.  Mixed-length corpora fall back to the per-pair
    reference path, whose pairwise truncation cannot be batched.

    Parameters
    ----------
    series_list:
        Sequence of :class:`TimeSeries` or arrays.
    shifted:
        When True use :func:`max_cross_correlation` (alignment-invariant);
        otherwise zero-lag :func:`cross_correlation`.
    """
    arrays = _equal_length_arrays(series_list)
    if arrays is None or len(arrays) <= 2:
        return pairwise_correlation_matrix_reference(series_list, shifted=shifted)
    from repro.timeseries.batch import SeriesBank

    bank = SeriesBank(np.vstack(arrays))
    if shifted:
        return bank.ncc_matrix()
    return bank.corr_matrix()


def average_pairwise_correlation(series_list, shifted: bool = False) -> float:
    """Mean of the upper-triangle pairwise correlations.

    Used as :math:`\\bar{\\rho}(C)` in Algorithm 2.  A singleton cluster has
    average correlation 1.0 by convention (perfectly self-similar).
    """
    n = len(series_list)
    if n == 0:
        raise ValidationError("cannot compute correlation of an empty cluster")
    if n == 1:
        return 1.0
    corr = pairwise_correlation_matrix(series_list, shifted=shifted)
    iu = np.triu_indices(n, k=1)
    return float(corr[iu].mean())


def sbd_distance_matrix_reference(series_list) -> np.ndarray:
    """Per-pair reference SBD matrix (parity target for the batched path)."""
    arrays = [_as_clean_array(s) for s in series_list]
    n = len(arrays)
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = shape_based_distance(arrays[i], arrays[j])
            dist[i, j] = dist[j, i] = d
    return dist


def sbd_distance_matrix(series_list) -> np.ndarray:
    """Symmetric matrix of shape-based distances (used by K-Shape).

    Equal-length corpora use the batched NCC kernel (one rFFT per series,
    blockwise spectral products); mixed lengths fall back to the per-pair
    reference loop.
    """
    arrays = _equal_length_arrays(series_list)
    if arrays is None or len(arrays) <= 2:
        return sbd_distance_matrix_reference(series_list)
    from repro.timeseries.batch import SeriesBank

    return SeriesBank(np.vstack(arrays)).sbd_matrix()
