"""Batched similarity kernels over a prepared series bank.

The per-pair functions in :mod:`repro.timeseries.correlation` are the
*reference implementation* of the similarity layer: readable, scalar, and
exactly the semantics of the paper (zero-lag Pearson correlation for the
clustering stage, max normalized cross-correlation / SBD for K-Shape).
They are also O(n²) Python loops — every pair re-cleans, re-z-norms, and
runs its own FFT, which is what made corpus-scale clustering (§VI) the
dominant training cost.

This module is the batched counterpart with a **bit-for-bit parity
contract** (≤ 1e-9 against the scalar path; identical argmax shifts):

* :class:`SeriesBank` cleans (NaN interpolation), truncates to the common
  minimum length, and z-normalizes a corpus *once* into a contiguous
  ``(n, L)`` float64 matrix, caching the rFFT bank per FFT size.
* :meth:`SeriesBank.corr_matrix` computes the full zero-lag correlation
  matrix as a single blockwise GEMM ``Z @ Z.T / L``.
* :func:`ncc_cross` / :meth:`SeriesBank.ncc_matrix` compute full NCC
  value *and argmax-shift* matrices with one rFFT per series, blockwise
  spectral products, and batched inverse FFTs — the kernel under both
  ``pairwise_correlation_matrix(shifted=True)`` / ``sbd_distance_matrix``
  and the K-Shape assignment / shape-extraction loops.

Every blockwise product is capped at :data:`DEFAULT_BLOCK_BYTES` of
scratch memory, so a 67K-series corpus streams through in fixed-size
slabs instead of materializing an ``(n, n, fft)`` cube.
"""

from __future__ import annotations

import json
import mmap as _mmap
import pathlib
import weakref

import numpy as np

from repro.exceptions import ValidationError
from repro.observability.resources import get_accounting

#: On-disk bank layout version (``meta.json`` of a memmap bank directory).
BANK_FORMAT_VERSION = 1

#: Scratch-memory cap (bytes) for one blockwise spectral product.  The
#: inverse-FFT slab for a block of ``b`` rows against ``m`` columns at FFT
#: size ``s`` costs ``b * m * s * (16 + 8)`` bytes (complex spectrum +
#: real cross-correlation); blocks are sized to stay under this cap.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024

#: Process-wide hit/miss counters of every :meth:`SeriesBank.cached`
#: lookup (rFFT banks, feature-extractor spectra, ...).  Surfaced by
#: :func:`bank_cache_stats` and the serving health snapshot.
_BANK_CACHE_STATS = {"hits": 0, "misses": 0}


def bank_cache_stats() -> dict:
    """Process-wide ``{hits, misses, hit_rate}`` of the bank derived-array
    caches (all :class:`SeriesBank` instances combined)."""
    hits = _BANK_CACHE_STATS["hits"]
    misses = _BANK_CACHE_STATS["misses"]
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }


def reset_bank_cache_stats() -> None:
    """Zero the process-wide bank cache counters (tests / fresh monitoring)."""
    _BANK_CACHE_STATS["hits"] = 0
    _BANK_CACHE_STATS["misses"] = 0


def _release_bank_bytes(holder: list) -> None:
    """Finalizer of a garbage-collected bank: release its live bytes."""
    get_accounting().account_sub("series_bank", holder[0])
    holder[0] = 0


def _release_bank_disk_bytes(holder: list) -> None:
    """Finalizer of a garbage-collected memmap bank: release its disk bytes."""
    if holder[0]:
        get_accounting().account_sub("series_bank_disk", holder[0])
        holder[0] = 0


def _clean_array(series) -> np.ndarray:
    """Clean one series exactly like the scalar reference path."""
    # Import here to avoid a circular import at module load time
    # (correlation.py dispatches into this module).
    from repro.timeseries.correlation import _as_clean_array

    return _as_clean_array(series)


def znorm_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise z-normalization matching the scalar ``_znorm``.

    Constant rows become all-zero rows (the scalar convention: constant
    series correlate 0 with everything).
    """
    matrix = np.asarray(matrix, dtype=float)
    means = matrix.mean(axis=1, keepdims=True)
    stds = matrix.std(axis=1, keepdims=True)
    out = np.zeros_like(matrix)
    np.divide(matrix - means, stds, out=out, where=stds != 0.0)
    return out


def _fft_size(length: int) -> int:
    """FFT size used by the scalar kernels: next pow2 ≥ 2L - 1."""
    return 1 << (2 * length - 1).bit_length()


def _block_rows(n_cols: int, fft_size: int, block_bytes: int) -> int:
    """Rows per blockwise spectral product under the memory cap."""
    per_row = max(1, n_cols) * fft_size * 24  # complex spec + real irfft
    return max(1, int(block_bytes // per_row))


def ncc_cross(
    X: np.ndarray,
    Y: np.ndarray,
    *,
    max_shift: int | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    fx: np.ndarray | None = None,
    fy_conj: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched max normalized cross-correlation values and argmax shifts.

    For every row pair ``(i, j)`` this computes exactly what the scalar
    ``_ncc_shift(X[i], Y[j])`` computes: the maximum of the zero-padded
    cross-correlation over shifts ``-(L-1) .. L-1`` divided by
    ``||X[i]|| * ||Y[j]||``, plus the (first) argmax shift.  Pairs where
    either norm is zero yield ``(0.0, 0)``.

    Parameters
    ----------
    X, Y:
        Float matrices of shape ``(nx, L)`` and ``(ny, L)`` (same L).
    max_shift:
        Optional symmetric restriction of the shift window.
    block_bytes:
        Scratch cap for each blockwise spectral product.
    fx, fy_conj:
        Optional precomputed ``rfft(X, size, axis=1)`` and
        ``conj(rfft(Y, size, axis=1))`` banks (see :class:`SeriesBank`).

    Returns
    -------
    (values, shifts):
        ``values`` is ``(nx, ny)`` float64, ``shifts`` ``(nx, ny)`` int64.
    """
    X = np.ascontiguousarray(X, dtype=float)
    Y = np.ascontiguousarray(Y, dtype=float)
    if X.ndim != 2 or Y.ndim != 2:
        raise ValidationError(
            f"ncc_cross expects 2-D matrices, got {X.shape} and {Y.shape}"
        )
    if X.shape[1] != Y.shape[1]:
        raise ValidationError(
            f"row lengths differ: {X.shape[1]} vs {Y.shape[1]}"
        )
    nx, L = X.shape
    ny = Y.shape[0]
    if L == 0:
        raise ValidationError("cannot correlate zero-length series")
    size = _fft_size(L)
    if fx is None:
        fx = np.fft.rfft(X, size, axis=1)
    if fy_conj is None:
        fy_conj = np.conj(np.fft.rfft(Y, size, axis=1))
    norm_x = np.linalg.norm(X, axis=1)
    norm_y = np.linalg.norm(Y, axis=1)
    denom = norm_x[:, None] * norm_y[None, :]

    # Shift window (matching the scalar reordering and slicing).
    if L > 1:
        n_shifts = 2 * L - 1
        center = L - 1
    else:
        n_shifts, center = 1, 0
    lo, hi = 0, n_shifts
    if max_shift is not None:
        lo = max(0, center - int(max_shift))
        hi = min(n_shifts, center + int(max_shift) + 1)

    values = np.zeros((nx, ny))
    shifts = np.zeros((nx, ny), dtype=np.int64)
    rows_per_block = _block_rows(ny, size, block_bytes)
    n_chunks = 0
    scratch_bytes = 0
    for start in range(0, nx, rows_per_block):
        stop = min(nx, start + rows_per_block)
        spec = fx[start:stop][:, None, :] * fy_conj[None, :, :]
        cc = np.fft.irfft(spec, size, axis=2)
        n_chunks += 1
        scratch_bytes += spec.nbytes + cc.nbytes
        if L > 1:
            # Reorder to shifts -(L-1) .. (L-1), exactly like the scalar
            # `np.concatenate((cc[-(L-1):], cc[:L]))`.
            cc = np.concatenate((cc[:, :, -(L - 1):], cc[:, :, :L]), axis=2)
        else:
            cc = cc[:, :, :1]
        cc = cc[:, :, lo:hi]
        idx = cc.argmax(axis=2)
        best = np.take_along_axis(cc, idx[:, :, None], axis=2)[:, :, 0]
        values[start:stop] = best
        shifts[start:stop] = idx + lo - center
    nonzero = denom != 0.0
    np.divide(values, denom, out=values, where=nonzero)
    values[~nonzero] = 0.0
    shifts[~nonzero] = 0
    get_accounting().record_kernel(
        "ncc_cross",
        bytes_moved=(
            X.nbytes + Y.nbytes + values.nbytes + shifts.nbytes
            + scratch_bytes
        ),
        chunks=n_chunks,
        scratch_allocations=2 * n_chunks,
    )
    return values, shifts


def ncc_rowwise(
    X: np.ndarray, Y: np.ndarray, *, return_shifts: bool = False
):
    """Row-aligned batched NCC: ``values[i] = max-NCC(X[i], Y[i])``.

    The batched form of calling the scalar ``_ncc_shift(X[i], Y[i])``
    once per row — used by K-Shape's empty-cluster reseeding, where each
    series is compared against *its own* assigned centroid.
    """
    X = np.ascontiguousarray(X, dtype=float)
    Y = np.ascontiguousarray(Y, dtype=float)
    if X.shape != Y.shape or X.ndim != 2:
        raise ValidationError(
            f"ncc_rowwise expects matching 2-D matrices, got {X.shape} / {Y.shape}"
        )
    n, L = X.shape
    if L == 0:
        raise ValidationError("cannot correlate zero-length series")
    size = _fft_size(L)
    cc = np.fft.irfft(
        np.fft.rfft(X, size, axis=1) * np.conj(np.fft.rfft(Y, size, axis=1)),
        size,
        axis=1,
    )
    if L > 1:
        cc = np.concatenate((cc[:, -(L - 1):], cc[:, :L]), axis=1)
        center = L - 1
    else:
        cc = cc[:, :1]
        center = 0
    idx = cc.argmax(axis=1)
    values = np.take_along_axis(cc, idx[:, None], axis=1)[:, 0]
    denom = np.linalg.norm(X, axis=1) * np.linalg.norm(Y, axis=1)
    nonzero = denom != 0.0
    np.divide(values, denom, out=values, where=nonzero)
    values[~nonzero] = 0.0
    if return_shifts:
        shifts = idx.astype(np.int64) - center
        shifts[~nonzero] = 0
        return values, shifts
    return values


class SeriesBank:
    """A corpus prepared once for batched similarity kernels.

    Cleaning (NaN interpolation), truncation to the common minimum
    length, and z-normalization happen exactly once at construction; the
    resulting contiguous ``(n, L)`` matrix plus its cached rFFT bank feed
    every downstream kernel.

    Parameters
    ----------
    matrix:
        Pre-cleaned ``(n, L)`` float matrix (rows are the *raw* truncated
        series; z-normalization is applied internally).
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValidationError(
                f"SeriesBank expects an (n, L) matrix, got shape {matrix.shape}"
            )
        if matrix.shape[1] == 0:
            raise ValidationError("SeriesBank rows must have length >= 1")
        if np.isnan(matrix).any():
            raise ValidationError(
                "SeriesBank matrix must be NaN-free (use from_series)"
            )
        self.raw = matrix
        self.znorm = znorm_rows(matrix)
        #: Row norms of the z-normed matrix (0.0 marks constant rows).
        self.norms = np.linalg.norm(self.znorm, axis=1)
        #: Bank directory for disk-backed banks; ``None`` for in-RAM banks.
        self.path: pathlib.Path | None = None
        #: Generic memo of arrays derived from the (immutable) bank
        #: contents, keyed by caller-chosen hashable keys; see
        #: :meth:`cached`.  The rFFT banks live here too.
        self._derived: dict = {}
        self._register_accounting(
            self.raw.nbytes + self.znorm.nbytes + self.norms.nbytes, 0
        )

    def _register_accounting(self, resident: int, disk: int) -> None:
        # Resource accounting: the bank's live bytes (base matrices now,
        # derived arrays as ``cached`` builds them) are tracked in the
        # shared ``series_bank`` account — memmap banks charge their
        # on-disk arrays to ``series_bank_disk`` instead — and released
        # when the bank is garbage-collected.  The mutable holders let
        # ``cached`` grow the figures after the finalizers are registered.
        registry = get_accounting()
        self._account_bytes = [resident]
        self._disk_bytes = [disk]
        registry.account_add("series_bank", resident)
        weakref.finalize(self, _release_bank_bytes, self._account_bytes)
        if disk:
            registry.account_add("series_bank_disk", disk)
        weakref.finalize(self, _release_bank_disk_bytes, self._disk_bytes)

    # ------------------------------------------------------------------
    @classmethod
    def from_series(cls, series_list) -> "SeriesBank":
        """Clean + truncate a heterogeneous corpus into a bank.

        Accepts :class:`~repro.timeseries.series.TimeSeries` or arrays;
        NaNs are linearly interpolated and all series are truncated to
        the common minimum length (the semantics of the per-pair path
        when lengths are equal).
        """
        arrays = [_clean_array(s) for s in series_list]
        if not arrays:
            raise ValidationError("cannot build a SeriesBank from no series")
        min_len = min(a.shape[0] for a in arrays)
        if min_len == 0:
            raise ValidationError("cannot bank zero-length series")
        return cls(np.vstack([a[:min_len] for a in arrays]))

    # ------------------------------------------------------------------
    # Out-of-core (memmap) banks
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path,
        series_list,
        *,
        length: int | None = None,
        n_series: int | None = None,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ) -> "SeriesBank":
        """Build a disk-backed bank under the ``path`` directory.

        Series are cleaned exactly like :meth:`from_series` but written
        straight into an on-disk memmap one at a time, so peak RAM is one
        series plus one z-norm block — never the corpus.  ``path`` ends
        up holding ``meta.json``, ``raw.npy``, ``znorm.npy`` and
        ``norms.npy`` (plus rFFT banks as kernels request them); reopen
        it later — or from another process — with :meth:`open`.

        Parameters
        ----------
        series_list:
            A sequence of series (two passes: one to find the common
            minimum length, one to write), or a single-pass iterable
            when both ``length`` and ``n_series`` are given.
        length, n_series:
            Explicit bank geometry for single-pass iterables.  Rows
            longer than ``length`` are truncated; shorter rows are an
            error (the sequence form derives the common minimum length
            instead).
        """
        from numpy.lib.format import open_memmap

        path = pathlib.Path(path)
        path.mkdir(parents=True, exist_ok=True)
        if length is None or n_series is None:
            series_list = list(series_list)
            if not series_list:
                raise ValidationError(
                    "cannot build a SeriesBank from no series"
                )
            n = len(series_list)
            min_len = min(_clean_array(s).shape[0] for s in series_list)
            if length is not None:
                min_len = min(min_len, int(length))
            if min_len == 0:
                raise ValidationError("cannot bank zero-length series")
            L = min_len
        else:
            n, L = int(n_series), int(length)
            if n <= 0 or L <= 0:
                raise ValidationError(
                    f"bank geometry must be positive, got ({n}, {L})"
                )
        raw = open_memmap(
            path / "raw.npy", mode="w+", dtype=np.float64, shape=(n, L)
        )
        written = 0
        for i, series in enumerate(series_list):
            if i >= n:
                raise ValidationError(
                    f"more than the declared {n} series were provided"
                )
            arr = _clean_array(series)
            if arr.shape[0] < L:
                raise ValidationError(
                    f"series {i} is shorter ({arr.shape[0]}) than the "
                    f"bank length {L}"
                )
            row = arr[:L]
            if np.isnan(row).any():
                raise ValidationError(
                    "SeriesBank matrix must be NaN-free (series "
                    f"{i} still contains NaN after cleaning)"
                )
            raw[i] = row
            written += 1
        if written != n:
            raise ValidationError(
                f"expected {n} series, got {written}"
            )
        znorm = open_memmap(
            path / "znorm.npy", mode="w+", dtype=np.float64, shape=(n, L)
        )
        norms = np.empty(n)
        rows = max(1, int(block_bytes // max(1, L * 8 * 2)))
        n_chunks = 0
        for start in range(0, n, rows):
            stop = min(n, start + rows)
            block = znorm_rows(raw[start:stop])
            znorm[start:stop] = block
            norms[start:stop] = np.linalg.norm(block, axis=1)
            n_chunks += 1
        raw.flush()
        znorm.flush()
        np.save(path / "norms.npy", norms)
        meta = {"version": BANK_FORMAT_VERSION, "n": n, "length": L}
        # meta.json is written last, atomically: a crash mid-create
        # leaves a directory that ``open`` rejects instead of a
        # truncated bank that serves garbage.
        tmp = path / "meta.json.tmp"
        tmp.write_text(json.dumps(meta))
        tmp.replace(path / "meta.json")
        del raw, znorm
        get_accounting().record_kernel(
            "bank_create",
            bytes_moved=2 * n * L * 8 + norms.nbytes,
            chunks=n_chunks,
            scratch_allocations=1,
        )
        return cls.open(path)

    @classmethod
    def open(cls, path) -> "SeriesBank":
        """Reopen a disk-backed bank created by :meth:`create`.

        The raw and z-normed matrices (and any rFFT banks derived later)
        are read-only memmaps: kernels stream them blockwise and the
        corpus never has to fit in RAM.  On-disk bytes are charged to the
        ``series_bank_disk`` account; only the row norms are resident.
        """
        path = pathlib.Path(path)
        meta_path = path / "meta.json"
        if not meta_path.exists():
            raise ValidationError(
                f"{path} does not contain a series bank (missing meta.json)"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise ValidationError(f"unreadable bank metadata: {exc}") from None
        if meta.get("version") != BANK_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported bank format version {meta.get('version')!r}"
            )
        raw = np.load(path / "raw.npy", mmap_mode="r")
        znorm = np.load(path / "znorm.npy", mmap_mode="r")
        norms = np.load(path / "norms.npy")
        shape = (int(meta.get("n", -1)), int(meta.get("length", -1)))
        if raw.shape != shape or znorm.shape != shape or norms.shape != shape[:1]:
            raise ValidationError(
                f"series bank files under {path} disagree with meta.json"
            )
        bank = object.__new__(cls)
        bank.raw = raw
        bank.znorm = znorm
        bank.norms = norms
        bank.path = path
        bank._derived = {}
        bank._register_accounting(norms.nbytes, raw.nbytes + znorm.nbytes)
        return bank

    @property
    def on_disk(self) -> bool:
        """Whether this bank's matrices are disk-backed memmaps."""
        return self.path is not None

    def handle(self) -> tuple:
        """Picklable descriptor of a disk-backed bank.

        Workers rebuild a zero-copy bank from it with :meth:`attach`; the
        pickle moves ~bytes of path, not the corpus.  In-RAM banks have
        no standalone handle — use :meth:`share` for those.
        """
        if not self.on_disk:
            raise ValidationError(
                "in-RAM banks have no standalone handle; use share()"
            )
        return ("memmap", str(self.path))

    def release_pages(self) -> None:
        """Drop this process's resident pages of every on-disk array.

        ``madvise(MADV_DONTNEED)`` on the read-only file mappings: the
        data stays in the OS page cache, but the process's RSS no longer
        charges for it.  Blockwise kernels call this between passes so
        the out-of-core path's peak RSS tracks the scratch cap, not the
        corpus.  No-op for in-RAM banks and platforms without madvise.
        """
        if not self.on_disk:
            return
        advice = getattr(_mmap, "MADV_DONTNEED", None)
        if advice is None:  # pragma: no cover - platform-dependent
            return
        arrays = [self.raw, self.znorm]
        arrays.extend(
            value
            for value in self._derived.values()
            if isinstance(value, np.memmap)
        )
        for arr in arrays:
            mapping = getattr(arr, "_mmap", None)
            if mapping is None:
                continue
            try:
                mapping.madvise(advice)
            except (OSError, ValueError):  # pragma: no cover - best effort
                return

    # ------------------------------------------------------------------
    def share(self):
        """Copy the raw matrix into a shared-memory segment.

        Returns the owning :class:`~repro.parallel.shm.SharedArray`;
        pass its ``.handle`` to workers and rebuild a zero-copy bank
        there with :meth:`attach`.  The caller owns the segment and must
        ``unlink()`` it when the fan-out completes.
        """
        from repro.parallel.shm import SharedArray

        return SharedArray.create(self.raw)

    @classmethod
    def attach(cls, handle) -> "SeriesBank":
        """Rebuild a bank from a :meth:`share` or :meth:`handle` handle.

        Shared-memory handles map the segment without copying (kept
        mapped by the per-process attach cache) and derive z-norm/rFFT
        locally; ``("memmap", path)`` handles from :meth:`handle` simply
        reopen the disk-backed bank.
        """
        if (
            isinstance(handle, tuple)
            and len(handle) == 2
            and handle[0] == "memmap"
        ):
            return cls.open(handle[1])
        from repro.parallel.shm import attach_cached

        return cls(attach_cached(handle).array)

    @property
    def n(self) -> int:
        return self.raw.shape[0]

    @property
    def length(self) -> int:
        return self.raw.shape[1]

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    def cached(self, key, builder):
        """Memoize an array derived from the bank's (immutable) contents.

        ``builder`` is a zero-argument callable evaluated on the first
        lookup of ``key``; later lookups return the stored value.  Every
        kernel that re-derives data from the bank (rFFT banks, the
        feature extractor's detrended spectra, ...) routes through here,
        so repeated batched calls over the same corpus share work.
        Hits/misses feed the process-wide :func:`bank_cache_stats`
        counters surfaced by the serving health snapshot.
        """
        if key in self._derived:
            _BANK_CACHE_STATS["hits"] += 1
            return self._derived[key]
        _BANK_CACHE_STATS["misses"] += 1
        value = builder()
        self._derived[key] = value
        nbytes = getattr(value, "nbytes", 0)
        if nbytes:
            # Disk-resident derivations (rFFT banks of a memmap bank)
            # are charged to the on-disk account, not resident RAM.
            if isinstance(value, np.memmap):
                self._disk_bytes[0] += nbytes
                get_accounting().account_add(
                    "series_bank_disk", nbytes, items=0
                )
            else:
                self._account_bytes[0] += nbytes
                get_accounting().account_add("series_bank", nbytes, items=0)
        return value

    def rfft(self, size: int | None = None) -> np.ndarray:
        """Cached ``rfft(znorm, size, axis=1)`` bank (one FFT per series).

        On-disk banks stream the FFT to a memmap next to the matrices so
        the spectral bank never has to fit in RAM either.
        """
        if size is None:
            size = _fft_size(self.length)
        if self.on_disk:
            return self.cached(
                ("rfft", size),
                lambda: self._disk_spectrum(f"rfft_{size}.npy", size, conj=False),
            )
        return self.cached(
            ("rfft", size), lambda: np.fft.rfft(self.znorm, size, axis=1)
        )

    def rfft_conj(self, size: int | None = None) -> np.ndarray:
        """Conjugate rFFT bank of an on-disk bank, itself stored on disk.

        ``ncc_matrix`` needs ``conj(rfft(znorm))`` for every row;
        materializing the conjugate of a memmapped spectrum would pull
        the whole bank into RAM, so disk-backed banks keep a second
        memmap with the conjugate precomputed.  In-RAM banks just
        conjugate the cached spectrum.
        """
        if size is None:
            size = _fft_size(self.length)
        if not self.on_disk:
            return np.conj(self.rfft(size))
        return self.cached(
            ("rfftc", size),
            lambda: self._disk_spectrum(f"rfftc_{size}.npy", size, conj=True),
        )

    def _disk_spectrum(self, filename: str, size: int, *, conj: bool):
        """Build (or reopen) an on-disk rFFT bank, blockwise.

        The spectrum is computed in scratch-cap-sized row blocks into a
        temp file and atomically renamed, then reopened read-only — so a
        crash mid-build never leaves a half-written bank behind, and a
        bank directory can be shared by many worker processes that each
        reuse the first build.
        """
        from numpy.lib.format import open_memmap

        target = self.path / filename
        if not target.exists():
            n = self.n
            n_bins = size // 2 + 1
            tmp = self.path / (filename + ".tmp")
            out = open_memmap(
                tmp, mode="w+", dtype=np.complex128, shape=(n, n_bins)
            )
            # 8B input row + 16B spectrum row + FFT scratch ~ 3x spectrum.
            per_row = self.length * 8 + n_bins * 16 * 3
            rows = max(1, int(DEFAULT_BLOCK_BYTES // per_row))
            for start in range(0, n, rows):
                stop = min(n, start + rows)
                block = np.fft.rfft(self.znorm[start:stop], size, axis=1)
                out[start:stop] = np.conj(block) if conj else block
            out.flush()
            del out
            tmp.replace(target)
        return np.load(target, mmap_mode="r")

    # ------------------------------------------------------------------
    def corr_matrix(
        self, *, block_bytes: int = DEFAULT_BLOCK_BYTES
    ) -> np.ndarray:
        """Zero-lag correlation matrix as a blockwise GEMM ``Z @ Z.T / L``.

        Matches ``pairwise_correlation_matrix(..., shifted=False)``:
        symmetric, unit diagonal, constant series correlate 0.
        """
        Z = self.znorm
        n, L = Z.shape
        out = np.empty((n, n))
        rows = max(1, int(block_bytes // max(1, n * 8)))
        n_chunks = 0
        for start in range(0, n, rows):
            stop = min(n, start + rows)
            out[start:stop] = Z[start:stop] @ Z.T
            n_chunks += 1
            if self.on_disk:
                self.release_pages()
        out /= L
        get_accounting().record_kernel(
            "corr_matrix",
            bytes_moved=Z.nbytes + out.nbytes,
            chunks=n_chunks,
            scratch_allocations=1,
        )
        # Mirror the reference construction: values from the upper
        # triangle, exact symmetry, exact unit diagonal.
        upper = np.triu(out, k=1)
        out = upper + upper.T
        np.fill_diagonal(out, 1.0)
        return out

    def ncc_matrix(
        self,
        *,
        max_shift: int | None = None,
        return_shifts: bool = False,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ):
        """Full NCC similarity matrix (and optionally argmax shifts).

        Matches ``max_cross_correlation`` applied to every (i, j) pair of
        the bank: symmetric values (mirrored from the upper triangle,
        like the reference loop), unit diagonal.  Only the columns at or
        right of each row block are computed — the lower triangle is the
        mirror, so spectral products / inverse FFTs for it would be
        discarded work (close to a 2x saving on square matrices).
        """
        fz = self.rfft()
        fz_conj = self.rfft_conj()
        n = self.n
        values = np.zeros((n, n))
        shifts = np.zeros((n, n), dtype=np.int64)
        rows = _block_rows(n, _fft_size(self.length), block_bytes)
        for start in range(0, n, rows):
            stop = min(n, start + rows)
            block_v, block_s = ncc_cross(
                self.znorm[start:stop],
                self.znorm[start:],
                max_shift=max_shift,
                block_bytes=block_bytes,
                fx=fz[start:stop],
                fy_conj=fz_conj[start:],
            )
            values[start:stop, start:] = block_v
            shifts[start:stop, start:] = block_s
            if self.on_disk:
                self.release_pages()
        upper = np.triu(values, k=1)
        values = upper + upper.T
        np.fill_diagonal(values, 1.0)
        if return_shifts:
            upper_s = np.triu(shifts, k=1)
            shifts = upper_s - upper_s.T
            return values, shifts
        return values

    def sbd_matrix(
        self, *, block_bytes: int = DEFAULT_BLOCK_BYTES
    ) -> np.ndarray:
        """Shape-based distance matrix ``1 - NCC`` with an exact zero diagonal."""
        ncc = self.ncc_matrix(block_bytes=block_bytes)
        upper = np.triu(1.0 - ncc, k=1)
        dist = upper + upper.T
        np.fill_diagonal(dist, 0.0)
        return dist

    def average_correlation(self) -> float:
        """Mean upper-triangle zero-lag correlation (``rho-bar`` of Alg. 2)."""
        if self.n == 1:
            return 1.0
        corr = self.corr_matrix()
        iu = np.triu_indices(self.n, k=1)
        return float(corr[iu].mean())
