"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when input data or parameters fail validation."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when predict/transform is called before fit."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative solver fails to converge and no fallback exists."""


class RegistryError(ReproError, KeyError):
    """Raised when a name is not found in (or conflicts within) a registry."""


class ImputationError(ReproError, RuntimeError):
    """Raised when an imputation algorithm cannot repair the given input."""


class ClusteringError(ReproError, RuntimeError):
    """Raised when a clustering routine receives unusable input."""
