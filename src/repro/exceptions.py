"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when input data or parameters fail validation."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when predict/transform is called before fit."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative solver fails to converge and no fallback exists."""


class RegistryError(ReproError, KeyError):
    """Raised when a name is not found in (or conflicts within) a registry."""


class ImputationError(ReproError, RuntimeError):
    """Raised when an imputation algorithm cannot repair the given input."""


class ClusteringError(ReproError, RuntimeError):
    """Raised when a clustering routine receives unusable input."""


# ---------------------------------------------------------------------------
# Resilience taxonomy (see repro.resilience).
#
# ``TransientError`` marks failures that a bounded retry may fix (flaky
# worker, injected chaos fault, lost process); everything else is treated
# as *fatal* by :class:`repro.resilience.FaultPolicy` unless a caller
# widens the retryable set explicitly.
# ---------------------------------------------------------------------------
class TransientError(ReproError, RuntimeError):
    """A failure that is plausibly recoverable by retrying the call."""


class WorkerCrashError(TransientError):
    """A parallel worker died mid-task (e.g. the process was killed)."""


class InjectedFault(TransientError):
    """Raised by :class:`repro.resilience.FaultInjector` fault plans."""


class DeadlineExceededError(ReproError, TimeoutError):
    """A call overran its wall-clock deadline.

    Deliberately *not* transient: a computation that blew its budget once
    will almost certainly blow it again, so retrying multiplies the damage.
    """


class CircuitOpenError(ReproError, RuntimeError):
    """A call was rejected because its circuit breaker is open (quarantined)."""


class EnsembleError(ReproError, RuntimeError):
    """Every ensemble member failed; no vote could be produced."""


# ---------------------------------------------------------------------------
# Serving taxonomy (see repro.serving).
#
# ``OverloadedError`` maps to the daemon's typed 503 shed response; it is
# the *expected* backpressure signal, not a bug.  ``ShardsExhaustedError``
# is the terminal 500: the batch was resubmitted across every healthy
# shard and failed on each one.
# ---------------------------------------------------------------------------
class ServingError(ReproError, RuntimeError):
    """Base class for serving-daemon failures."""


class ProtocolError(ServingError, ValueError):
    """A malformed request/response line on the serving wire."""


class OverloadedError(ServingError):
    """The daemon shed a request (admission control / backpressure)."""


class AllShardsQuarantinedError(OverloadedError):
    """Every worker shard's circuit breaker is currently open."""


class ShardsExhaustedError(ServingError):
    """A batch failed on every shard it was (re)submitted to."""


class EvaluationError(ReproError, RuntimeError):
    """A race evaluation failed under ``fail_fast`` semantics."""
