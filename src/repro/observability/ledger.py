"""Repair provenance ledger: append-only lineage for every fit and repair.

Latency histograms and drift scores (PR 3) say *how well* the system is
doing; this module answers *why a specific repair happened the way it
did*.  Every training run and every served repair is assigned a stable
id and appended to a schema-versioned JSONL ledger:

* ``fit`` rows — one per ``ADarts.fit_features``: training-matrix
  content hash, class set, the race/label rows it references;
* ``race`` rows — one per :class:`~repro.core.modelrace.ModelRace` run:
  elite pipelines with their accumulated fold scores, the structured
  per-iteration pruning records, evaluation counts, prune ratio;
* ``label`` rows — one per (cluster, ratio, pattern) labeling race:
  winning imputer, full ranking, and each member's NCC against the
  cluster representative (:func:`~repro.timeseries.batch.ncc_rowwise`);
* ``repair`` rows — one per recommended series at serving time: feature
  content hash (the :class:`~repro.parallel.FeatureCache` key), cluster
  assignment (nearest atlas representative + NCC), per-class soft-vote
  confidences, the :class:`~repro.core.voting.VoteDetail` member
  accounting, degraded/fallback flags, and the fit/race rows that
  produced the ensemble;
* ``impute`` rows — one per imputation executed under a repair context:
  the algorithm, its hyperparameters, and post-repair residual/quality
  statistics on the observed region.

All rows carry the thread's active trace id
(:meth:`~repro.observability.tracing.Tracer.current_trace_id`), the same
key stamped into log records, so ledger rows, spans, and log lines join
on one correlation key.

Following the substrate's rules, the module-level default is a
:data:`NULL_LEDGER` no-op: library code emits unconditionally and pays
nothing until a real :class:`RepairLedger` is installed via
:func:`set_ledger` / :class:`use_ledger` (the CLI's ``--ledger-out``
flag does exactly this).  The ``repro audit`` and ``repro explain``
subcommands are thin renderers over :func:`read_ledger`,
:func:`summarize_ledger`, and :func:`explain_repair`.
"""

from __future__ import annotations

import datetime as _dt
import json
import pathlib
import threading
import uuid
from collections import deque

import numpy as np

from repro.exceptions import ValidationError
from repro.observability.log import get_logger
from repro.observability.tracing import get_tracer

_log = get_logger(__name__)

#: Current ledger record schema.  v1 was the flat prototype layout
#: (payload keys at the top level, epoch-seconds ``ts``, no trace id);
#: v2 nests the payload under ``data`` and adds ``time``/``trace_id``.
SCHEMA_VERSION = 2

#: Envelope keys of a v2 record; everything else belongs in ``data``.
RESERVED_KEYS = ("schema", "kind", "id", "run_id", "time", "trace_id", "data")

_EPS = 1e-12


def new_id(prefix: str) -> str:
    """A short, collision-resistant id (``rep_3f9a1c...``)."""
    return f"{prefix}_{uuid.uuid4().hex[:12]}"


def _utcnow() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat()


def upgrade_record(record: dict) -> dict:
    """Normalize a ledger record of any known schema version to v2.

    * v2 records pass through (missing envelope fields get defaults);
    * v1 records — no ``schema`` field or ``schema: 1`` — carried their
      payload at the top level and an epoch-seconds ``ts``: the payload
      moves under ``data``, ``ts`` becomes an ISO ``time``, and
      ``trace_id`` defaults to ``None``.

    Raises :class:`~repro.exceptions.ValidationError` for records that
    are not dicts or claim a future schema.
    """
    if not isinstance(record, dict):
        raise ValidationError(f"ledger record must be an object, got {type(record).__name__}")
    version = record.get("schema", 1)
    if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
        raise ValidationError(f"unsupported ledger schema version {version!r}")
    if version == SCHEMA_VERSION:
        out = dict(record)
        out.setdefault("trace_id", None)
        out.setdefault("run_id", None)
        out.setdefault("time", None)
        out.setdefault("data", {})
        return out
    # v1 -> v2: lift the flat payload into the envelope.
    data = {
        key: value
        for key, value in record.items()
        if key not in RESERVED_KEYS and key != "ts"
    }
    ts = record.get("ts")
    if isinstance(ts, (int, float)):
        time_str = _dt.datetime.fromtimestamp(
            float(ts), tz=_dt.timezone.utc
        ).isoformat()
    else:
        time_str = record.get("time")
    return {
        "schema": SCHEMA_VERSION,
        "kind": record.get("kind", "event"),
        "id": record.get("id", new_id("rec")),
        "run_id": record.get("run_id"),
        "time": time_str,
        "trace_id": record.get("trace_id"),
        "data": data,
    }


# ---------------------------------------------------------------------------
# Ledger objects
# ---------------------------------------------------------------------------
class NullLedger:
    """Default no-op ledger: emission sites check ``enabled`` and skip."""

    enabled = False
    run_id = None

    def record(self, kind: str, data: dict, *, record_id: str | None = None) -> str | None:
        """Discard the row; returns ``None`` so callers skip correlation."""
        return None

    def record_many(
        self, kind: str, datas, *, record_ids=None
    ) -> list[str | None]:
        """Discard all rows; one ``None`` per payload."""
        return [None] * len(datas)

    def records(self) -> list[dict]:
        return []

    def flush(self) -> None:
        """Nothing buffered."""

    def close(self) -> None:
        """Nothing open."""


#: Shared no-op ledger singleton; the default until :func:`set_ledger`.
NULL_LEDGER = NullLedger()


class RepairLedger:
    """Append-only, schema-versioned JSONL provenance ledger.

    Parameters
    ----------
    path:
        JSONL file to append rows to.  ``None`` keeps the ledger
        memory-only (tests, snapshot aggregation).
    run_id:
        Stable id stamped into every row; generated when omitted.  A
        serving process replaying against a trained engine may reuse the
        engine's fit-time run id to keep one lineage namespace.
    keep_in_memory:
        Ring-buffer capacity of the in-memory record view (the file is
        never truncated).  ``None`` keeps everything.
    """

    enabled = True

    def __init__(
        self,
        path=None,
        *,
        run_id: str | None = None,
        keep_in_memory: int | None = 100_000,
    ):
        self.path = pathlib.Path(path) if path is not None else None
        self.run_id = run_id or new_id("run")
        self._records: deque = deque(maxlen=keep_in_memory)
        self._lock = threading.Lock()
        self._fh = None
        self.n_written = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    # -- emission --------------------------------------------------------
    def record(self, kind: str, data: dict, *, record_id: str | None = None) -> str:
        """Append one row; returns the row id for caller-side correlation."""
        row = {
            "schema": SCHEMA_VERSION,
            "kind": str(kind),
            "id": record_id or new_id(kind[:3] if kind else "rec"),
            "run_id": self.run_id,
            "time": _utcnow(),
            "trace_id": get_tracer().current_trace_id(),
            "data": data,
        }
        line = json.dumps(row, default=_jsonable)
        with self._lock:
            self._records.append(row)
            self.n_written += 1
            if self._fh is not None:
                self._fh.write(line + "\n")
        return row["id"]

    def record_many(
        self, kind: str, datas, *, record_ids=None
    ) -> list[str]:
        """Append one row per payload under a single lock acquisition.

        The envelope fields that are identical across a batch — kind,
        run id, timestamp, trace id — are computed once, so emitting a
        corpus-sized batch of ``impute`` rows costs one ``_utcnow`` and
        one tracer lookup instead of one per row.  Row ids remain
        per-row (generated unless ``record_ids`` supplies them).
        """
        kind = str(kind)
        prefix = kind[:3] if kind else "rec"
        time_str = _utcnow()
        trace_id = get_tracer().current_trace_id()
        rows = []
        for i, data in enumerate(datas):
            rid = record_ids[i] if record_ids is not None else None
            rows.append(
                {
                    "schema": SCHEMA_VERSION,
                    "kind": kind,
                    "id": rid or new_id(prefix),
                    "run_id": self.run_id,
                    "time": time_str,
                    "trace_id": trace_id,
                    "data": data,
                }
            )
        lines = [json.dumps(row, default=_jsonable) for row in rows]
        with self._lock:
            self._records.extend(rows)
            self.n_written += len(rows)
            if self._fh is not None and lines:
                self._fh.write("\n".join(lines) + "\n")
        return [row["id"] for row in rows]

    # -- access ----------------------------------------------------------
    def records(self) -> list[dict]:
        """Snapshot of the in-memory record view, oldest first."""
        with self._lock:
            return list(self._records)

    def tail(self, n: int) -> list[dict]:
        """The most recent ``n`` in-memory records."""
        with self._lock:
            items = list(self._records)
        return items[-max(0, int(n)):]

    def flush(self) -> None:
        """Flush buffered file writes to disk."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RepairLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


# ---------------------------------------------------------------------------
# Process-wide default ledger (a no-op unless explicitly installed).
# ---------------------------------------------------------------------------
_default_ledger: RepairLedger | NullLedger = NULL_LEDGER
_default_lock = threading.Lock()


def get_ledger() -> RepairLedger | NullLedger:
    """The currently installed ledger (a shared no-op by default)."""
    return _default_ledger


def set_ledger(ledger: RepairLedger | None) -> RepairLedger | NullLedger:
    """Install ``ledger`` as the process-wide default; ``None`` resets."""
    global _default_ledger
    with _default_lock:
        _default_ledger = ledger if ledger is not None else NULL_LEDGER
    return _default_ledger


class use_ledger:
    """Context manager installing a ledger for the duration of a block."""

    def __init__(self, ledger: RepairLedger | None):
        self.ledger = ledger
        self._previous: RepairLedger | NullLedger | None = None

    def __enter__(self) -> RepairLedger | NullLedger:
        self._previous = get_ledger()
        return set_ledger(self.ledger)

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_ledger(
            self._previous if isinstance(self._previous, RepairLedger) else None
        )
        return False


# ---------------------------------------------------------------------------
# Repair context: correlates imputer-level rows with their repair row.
# ---------------------------------------------------------------------------
_repair_local = threading.local()


def current_repair_id() -> str | None:
    """The repair id bound to the calling thread, if any."""
    stack = getattr(_repair_local, "stack", None)
    return stack[-1] if stack else None


class repair_context:
    """Bind a repair id to the calling thread for the duration of a block.

    :meth:`Recommendation.impute <repro.core.adarts.Recommendation.impute>`
    wraps the imputation call in this context, so the ``impute`` ledger
    row emitted inside :meth:`BaseImputer.impute
    <repro.imputation.base.BaseImputer.impute>` carries the repair id of
    the recommendation that triggered it.
    """

    def __init__(self, repair_id: str | None):
        self.repair_id = repair_id

    def __enter__(self):
        stack = getattr(_repair_local, "stack", None)
        if stack is None:
            stack = _repair_local.stack = []
        stack.append(self.repair_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = getattr(_repair_local, "stack", None)
        if stack:
            stack.pop()
        return False


# ---------------------------------------------------------------------------
# Post-repair quality statistics
# ---------------------------------------------------------------------------
def repair_quality_stats(completed: np.ndarray, mask: np.ndarray) -> dict:
    """Residual/quality proxies of one completed matrix.

    Ground truth at the missing positions is unknown at serving time, so
    quality is scored against the *observed region*:

    * ``plausibility_z`` — distance of the imputed-value mean from the
      observed mean, in observed standard deviations (large values mean
      the fill is distributionally implausible);
    * ``scale_ratio`` — imputed std over observed std (≈1 is healthy;
      ≈0 flags flat fills into a variable series);
    * ``roughness_ratio`` — mean absolute first difference at the
      repair-block boundaries over the series' own mean absolute first
      difference (large values flag visible seams).
    """
    completed = np.atleast_2d(np.asarray(completed, dtype=float))
    mask = np.atleast_2d(np.asarray(mask, dtype=bool))
    observed = completed[~mask]
    imputed = completed[mask]
    obs_mean = float(observed.mean()) if observed.size else 0.0
    obs_std = float(observed.std()) if observed.size else 0.0
    imp_mean = float(imputed.mean()) if imputed.size else 0.0
    imp_std = float(imputed.std()) if imputed.size else 0.0
    plausibility = abs(imp_mean - obs_mean) / max(obs_std, _EPS)
    scale_ratio = imp_std / max(obs_std, _EPS)
    # Boundary seams: |x[t] - x[t-1]| wherever the mask flips.
    diffs = np.abs(np.diff(completed, axis=1))
    flips = mask[:, 1:] != mask[:, :-1]
    overall = float(diffs.mean()) if diffs.size else 0.0
    boundary = float(diffs[flips].mean()) if flips.any() else 0.0
    return {
        "n_missing": int(mask.sum()),
        "missing_fraction": float(mask.mean()) if mask.size else 0.0,
        "observed_mean": obs_mean,
        "observed_std": obs_std,
        "imputed_mean": imp_mean,
        "imputed_std": imp_std,
        "plausibility_z": float(plausibility),
        "scale_ratio": float(scale_ratio),
        "roughness_ratio": float(boundary / max(overall, _EPS)) if boundary else 0.0,
    }


def repair_quality_stats_block(
    completed3: np.ndarray, mask3: np.ndarray
) -> list[dict]:
    """Batched :func:`repair_quality_stats` over a ``(B, n, L)`` stack.

    Returns one stats dict per problem, numerically matching the scalar
    function applied per problem (same reduction structure: flat means
    and stds over the problem's observed/imputed cells).  Used by
    :meth:`BaseImputer.impute_many
    <repro.imputation.base.BaseImputer.impute_many>` to amortize the
    per-call setup when emitting a batch of ``impute`` rows.
    """
    completed3 = np.asarray(completed3, dtype=float)
    mask3 = np.asarray(mask3, dtype=bool)
    if completed3.ndim == 2:
        completed3 = completed3[None]
        mask3 = mask3[None]
    B = completed3.shape[0]
    obs3 = ~mask3
    n_missing = mask3.sum(axis=(1, 2))
    n_observed = obs3.sum(axis=(1, 2))
    cells = mask3[0].size
    # Masked means/stds per problem via sums (empty selections -> 0.0,
    # matching the scalar guards).
    obs_vals = np.where(obs3, completed3, 0.0)
    imp_vals = np.where(mask3, completed3, 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        obs_mean = np.where(
            n_observed > 0, obs_vals.sum(axis=(1, 2)) / np.maximum(n_observed, 1), 0.0
        )
        imp_mean = np.where(
            n_missing > 0, imp_vals.sum(axis=(1, 2)) / np.maximum(n_missing, 1), 0.0
        )
        obs_var = (
            np.where(obs3, (completed3 - obs_mean[:, None, None]) ** 2, 0.0).sum(
                axis=(1, 2)
            )
            / np.maximum(n_observed, 1)
        )
        imp_var = (
            np.where(mask3, (completed3 - imp_mean[:, None, None]) ** 2, 0.0).sum(
                axis=(1, 2)
            )
            / np.maximum(n_missing, 1)
        )
    obs_std = np.where(n_observed > 0, np.sqrt(obs_var), 0.0)
    imp_std = np.where(n_missing > 0, np.sqrt(imp_var), 0.0)
    plausibility = np.abs(imp_mean - obs_mean) / np.maximum(obs_std, _EPS)
    scale_ratio = imp_std / np.maximum(obs_std, _EPS)
    diffs = np.abs(np.diff(completed3, axis=2))
    flips = mask3[:, :, 1:] != mask3[:, :, :-1]
    n_flips = flips.sum(axis=(1, 2))
    overall = diffs.mean(axis=(1, 2)) if diffs.size else np.zeros(B)
    boundary = np.where(
        n_flips > 0,
        np.where(flips, diffs, 0.0).sum(axis=(1, 2)) / np.maximum(n_flips, 1),
        0.0,
    )
    rough = np.where(
        boundary != 0.0, boundary / np.maximum(overall, _EPS), 0.0
    )
    return [
        {
            "n_missing": int(n_missing[b]),
            "missing_fraction": float(n_missing[b] / cells) if cells else 0.0,
            "observed_mean": float(obs_mean[b]),
            "observed_std": float(obs_std[b]),
            "imputed_mean": float(imp_mean[b]),
            "imputed_std": float(imp_std[b]),
            "plausibility_z": float(plausibility[b]),
            "scale_ratio": float(scale_ratio[b]),
            "roughness_ratio": float(rough[b]),
        }
        for b in range(B)
    ]


# ---------------------------------------------------------------------------
# Cluster atlas: fit-time representatives for serving-side assignment
# ---------------------------------------------------------------------------
class ClusterAtlas:
    """Fit-time cluster representatives, queryable at serving time.

    Built by :class:`~repro.clustering.labeling.ClusterLabeler`: one
    z-normalized representative series per labeling cluster, together
    with the cluster's winning imputer.  :meth:`assign` then gives any
    incoming series a cluster assignment — the nearest representative by
    NCC (:func:`~repro.timeseries.batch.ncc_rowwise`) — which repair
    ledger rows and the per-cluster serving scorecard both use.
    """

    def __init__(self):
        self.ids: list[str] = []
        self.labels: list[str] = []
        self.representatives: list[np.ndarray] = []
        # Serving traffic is usually fixed-length, so the z-normed,
        # truncated representative matrices are cached per query length.
        self._prepared: dict[int, list] = {}

    @property
    def n_clusters(self) -> int:
        return len(self.ids)

    def __len__(self) -> int:
        return len(self.ids)

    def add(self, cluster_id: str, label: str, representative) -> None:
        """Register one cluster; ``representative`` is z-normalized here."""
        values = np.asarray(representative, dtype=float).ravel()
        if values.size < 2:
            raise ValidationError("cluster representative needs >= 2 points")
        self.ids.append(str(cluster_id))
        self.labels.append(str(label))
        self.representatives.append(_znorm(values))
        self._prepared.clear()

    def merge(self, other: "ClusterAtlas") -> "ClusterAtlas":
        """Fold another atlas's clusters into this one (corpus labeling)."""
        self.ids.extend(other.ids)
        self.labels.extend(other.labels)
        self.representatives.extend(other.representatives)
        self._prepared.clear()
        return self

    # -- assignment ------------------------------------------------------
    def assign(self, values) -> dict | None:
        """Nearest-representative assignment of one series.

        Returns ``{"cluster", "ncc", "label"}`` or ``None`` for an empty
        atlas.  NaNs are linearly interpolated first (serving series are
        faulty by definition); both sides are truncated to the common
        length and z-normalized, matching the labeling-time treatment.
        """
        if not self.ids:
            return None
        series = _interpolate(np.asarray(values, dtype=float).ravel())
        if series.size < 2:
            return None
        best_idx, best_ncc = 0, -np.inf
        for length, indices, conj_fft, norms, size in self._prepare(
            series.size
        ):
            x = _znorm(series[:length])
            # Shift-maximized NCC against every representative at once
            # (the ncc_rowwise recipe with the representatives' FFTs and
            # norms precomputed — this runs once per served series).
            cc = np.fft.irfft(
                np.fft.rfft(x, size)[None, :] * conj_fft, size, axis=1
            )
            if length > 1:
                cc = np.concatenate(
                    (cc[:, -(length - 1):], cc[:, :length]), axis=1
                )
            peaks = cc.max(axis=1)
            denom = np.linalg.norm(x) * norms
            nccs = np.divide(
                peaks, denom, out=np.zeros_like(peaks), where=denom != 0.0
            )
            group_best = int(np.argmax(nccs))
            if nccs[group_best] > best_ncc:
                best_idx, best_ncc = indices[group_best], float(nccs[group_best])
        return {
            "cluster": self.ids[best_idx],
            "ncc": best_ncc,
            "label": self.labels[best_idx],
        }

    def _prepare(self, n: int) -> list:
        """Representatives grouped by common length with ``n``-point series.

        Each entry is ``(length, indices, conj_fft, norms, fft_size)``
        with the z-normed, truncated representatives' conjugate FFTs and
        norms precomputed, so :meth:`assign` only transforms the query.
        """
        cached = self._prepared.get(n)
        if cached is None:
            from repro.timeseries.batch import _fft_size

            groups: dict[int, list[int]] = {}
            for idx, rep in enumerate(self.representatives):
                groups.setdefault(min(n, rep.size), []).append(idx)
            cached = []
            for length, indices in groups.items():
                matrix = np.vstack(
                    [_znorm(self.representatives[i][:length]) for i in indices]
                )
                size = _fft_size(length)
                cached.append(
                    (
                        length,
                        indices,
                        np.conj(np.fft.rfft(matrix, size, axis=1)),
                        np.linalg.norm(matrix, axis=1),
                        size,
                    )
                )
            if len(self._prepared) >= 32:  # unbounded-length traffic guard
                self._prepared.clear()
            self._prepared[n] = cached
        return cached

    # -- persistence -----------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "ids": list(self.ids),
            "labels": list(self.labels),
            "representatives": [r.tolist() for r in self.representatives],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ClusterAtlas":
        atlas = cls()
        for cluster_id, label, rep in zip(
            document["ids"], document["labels"], document["representatives"]
        ):
            atlas.ids.append(str(cluster_id))
            atlas.labels.append(str(label))
            atlas.representatives.append(np.asarray(rep, dtype=float))
        return atlas


def _znorm(values: np.ndarray) -> np.ndarray:
    std = values.std()
    return (values - values.mean()) / (std if std > _EPS else 1.0)


def _interpolate(values: np.ndarray) -> np.ndarray:
    mask = np.isnan(values)
    if not mask.any():
        return values
    obs = np.flatnonzero(~mask)
    if obs.size == 0:
        return np.zeros_like(values)
    out = values.copy()
    out[mask] = np.interp(np.flatnonzero(mask), obs, values[obs])
    return out


# ---------------------------------------------------------------------------
# Reading, filtering, summarizing
# ---------------------------------------------------------------------------
def read_ledger(path) -> list[dict]:
    """Load and schema-upgrade every record of a JSONL ledger file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such ledger file: {path}")
    records: list[dict] = []
    with path.open(encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{line_no} is not valid JSON: {exc}"
                ) from None
            records.append(upgrade_record(raw))
    return records


def filter_records(
    records,
    *,
    kind: str | None = None,
    algorithm: str | None = None,
    cluster: str | None = None,
    degraded_only: bool = False,
    run_id: str | None = None,
) -> list[dict]:
    """Subset of ``records`` matching every given criterion."""
    out = []
    for rec in records:
        data = rec.get("data", {})
        if kind is not None and rec.get("kind") != kind:
            continue
        if run_id is not None and rec.get("run_id") != run_id:
            continue
        if algorithm is not None and data.get("algorithm") != algorithm:
            continue
        if cluster is not None:
            rec_cluster = (data.get("cluster") or {}).get("cluster") \
                if isinstance(data.get("cluster"), dict) else data.get("cluster")
            if rec_cluster != cluster:
                continue
        if degraded_only and not (data.get("degraded") or data.get("fallback")):
            continue
        out.append(rec)
    return out


def _mean(values: list[float]) -> float:
    return float(np.mean(values)) if values else 0.0


def summarize_ledger(records) -> dict:
    """Aggregate a record list into the ``repro audit --summary`` document.

    Per-imputer and per-cluster scorecards over the repair rows, quality
    aggregates over the impute rows, counts of everything else.
    """
    kinds: dict[str, int] = {}
    run_ids: set[str] = set()
    times: list[str] = []
    per_algorithm: dict[str, dict] = {}
    per_cluster: dict[str, dict] = {}
    quality: dict[str, dict] = {}
    n_degraded = n_fallback = 0
    for rec in records:
        kinds[rec.get("kind", "?")] = kinds.get(rec.get("kind", "?"), 0) + 1
        if rec.get("run_id"):
            run_ids.add(rec["run_id"])
        if rec.get("time"):
            times.append(rec["time"])
        data = rec.get("data", {})
        if rec.get("kind") == "repair":
            algo = str(data.get("algorithm"))
            card = per_algorithm.setdefault(
                algo, {"n": 0, "degraded": 0, "confidences": []}
            )
            card["n"] += 1
            if data.get("degraded") or data.get("fallback"):
                card["degraded"] += 1
                n_degraded += 1
            if data.get("fallback"):
                n_fallback += 1
            if data.get("confidence") is not None:
                card["confidences"].append(float(data["confidence"]))
            assignment = data.get("cluster")
            if isinstance(assignment, dict) and assignment.get("cluster"):
                entry = per_cluster.setdefault(
                    str(assignment["cluster"]), {"n": 0, "nccs": [], "degraded": 0}
                )
                entry["n"] += 1
                if assignment.get("ncc") is not None:
                    entry["nccs"].append(float(assignment["ncc"]))
                if data.get("degraded") or data.get("fallback"):
                    entry["degraded"] += 1
        elif rec.get("kind") == "impute":
            algo = str(data.get("algorithm"))
            stats = data.get("quality") or {}
            card = quality.setdefault(
                algo, {"n": 0, "plausibility": [], "roughness": [], "elapsed": []}
            )
            card["n"] += 1
            if stats.get("plausibility_z") is not None:
                card["plausibility"].append(float(stats["plausibility_z"]))
            if stats.get("roughness_ratio") is not None:
                card["roughness"].append(float(stats["roughness_ratio"]))
            if data.get("elapsed_s") is not None:
                card["elapsed"].append(float(data["elapsed_s"]))
    return {
        "n_records": len(records),
        "kinds": dict(sorted(kinds.items())),
        "run_ids": sorted(run_ids),
        "first_time": min(times) if times else None,
        "last_time": max(times) if times else None,
        "repairs": {
            "n": kinds.get("repair", 0),
            "degraded": n_degraded,
            "fallback": n_fallback,
            "per_algorithm": {
                name: {
                    "n": card["n"],
                    "degraded": card["degraded"],
                    "mean_confidence": _mean(card["confidences"]),
                }
                for name, card in sorted(per_algorithm.items())
            },
            "per_cluster": {
                name: {
                    "n": entry["n"],
                    "degraded": entry["degraded"],
                    "mean_ncc": _mean(entry["nccs"]),
                }
                for name, entry in sorted(per_cluster.items())
            },
        },
        "imputations": {
            name: {
                "n": card["n"],
                "mean_plausibility_z": _mean(card["plausibility"]),
                "mean_roughness_ratio": _mean(card["roughness"]),
                "mean_elapsed_s": _mean(card["elapsed"]),
            }
            for name, card in sorted(quality.items())
        },
    }


def render_summary(summary: dict) -> str:
    """Fixed-width text rendering of :func:`summarize_ledger`'s output."""
    lines = [
        "repair ledger summary",
        "=" * 60,
        f"records      : {summary['n_records']}",
        f"kinds        : "
        + ", ".join(f"{k}={v}" for k, v in summary["kinds"].items()),
        f"runs         : {len(summary['run_ids'])}",
        f"span         : {summary['first_time']} .. {summary['last_time']}",
    ]
    repairs = summary["repairs"]
    lines.append(
        f"repairs      : {repairs['n']} "
        f"(degraded {repairs['degraded']}, fallback {repairs['fallback']})"
    )
    if repairs["per_algorithm"]:
        lines.append("per-imputer scorecard:")
        lines.append(f"  {'algorithm':<14} {'n':>6} {'degraded':>9} {'conf':>7}")
        for name, card in repairs["per_algorithm"].items():
            lines.append(
                f"  {name:<14} {card['n']:>6} {card['degraded']:>9} "
                f"{card['mean_confidence']:>7.3f}"
            )
    if repairs["per_cluster"]:
        lines.append("per-cluster scorecard:")
        lines.append(f"  {'cluster':<22} {'n':>6} {'degraded':>9} {'ncc':>7}")
        for name, card in repairs["per_cluster"].items():
            lines.append(
                f"  {name:<22} {card['n']:>6} {card['degraded']:>9} "
                f"{card['mean_ncc']:>7.3f}"
            )
    if summary["imputations"]:
        lines.append("imputation quality (observed-region proxies):")
        lines.append(
            f"  {'algorithm':<14} {'n':>6} {'plaus_z':>8} {'rough':>7} {'sec':>8}"
        )
        for name, card in summary["imputations"].items():
            lines.append(
                f"  {name:<14} {card['n']:>6} "
                f"{card['mean_plausibility_z']:>8.3f} "
                f"{card['mean_roughness_ratio']:>7.2f} "
                f"{card['mean_elapsed_s']:>8.4f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Explain: reconstruct one repair's decision path
# ---------------------------------------------------------------------------
def explain_repair(records, repair_id: str, *, head: dict | None = None) -> dict:
    """Assemble the full decision path of one repair row.

    ``records`` is a (possibly filtered) record list from
    :func:`read_ledger`; ``head`` is an optional engine
    ``ledger_head_`` whose fit-time rows extend the search space when
    training and serving wrote to different files.

    Raises :class:`~repro.exceptions.ValidationError` when ``repair_id``
    is unknown.
    """
    pool = list(records)
    if head and head.get("records"):
        known = {rec.get("id") for rec in pool}
        pool.extend(
            upgrade_record(rec)
            for rec in head["records"]
            if rec.get("id") not in known
        )
    by_id = {rec.get("id"): rec for rec in pool}
    repair = by_id.get(repair_id)
    if repair is None or repair.get("kind") != "repair":
        raise ValidationError(f"no repair record with id {repair_id!r}")
    data = repair.get("data", {})
    race = by_id.get(data.get("race_id"))
    fit = by_id.get(data.get("fit_id"))
    if fit is None and data.get("fit_run_id"):
        fits = [
            rec for rec in pool
            if rec.get("kind") == "fit" and rec.get("run_id") == data["fit_run_id"]
        ]
        fit = fits[-1] if fits else None
    if race is None and fit is not None:
        race = by_id.get(fit.get("data", {}).get("race_id"))
    assignment = data.get("cluster") or {}
    cluster_id = assignment.get("cluster") if isinstance(assignment, dict) else None
    labels = [
        rec for rec in pool
        if rec.get("kind") == "label"
        and (cluster_id is None or rec.get("data", {}).get("cluster_id") == cluster_id)
    ]
    imputes = [
        rec for rec in pool
        if rec.get("kind") == "impute"
        and rec.get("data", {}).get("repair_id") == repair_id
    ]
    return {
        "repair": repair,
        "cluster": assignment or None,
        "labeling": labels if cluster_id is not None else [],
        "race": race,
        "fit": fit,
        "imputations": imputes,
        "resilience": {
            "degraded": bool(data.get("degraded")),
            "fallback": bool(data.get("fallback")),
            "vote": data.get("vote"),
            "quarantined_members": data.get("quarantined_members", []),
        },
    }


def render_explanation(explanation: dict) -> str:
    """Human-readable decision path of one repair."""
    repair = explanation["repair"]
    data = repair.get("data", {})
    lines = [
        f"repair {repair.get('id')}",
        "=" * 60,
        f"time         : {repair.get('time')}",
        f"trace id     : {repair.get('trace_id')}",
        f"run id       : {repair.get('run_id')}",
        f"series       : {data.get('series')} "
        f"(len {data.get('series_len')}, {data.get('n_missing')} missing)",
        f"feature hash : {data.get('feature_hash')}",
    ]
    assignment = explanation.get("cluster")
    if assignment:
        lines.append(
            f"cluster      : {assignment.get('cluster')} "
            f"(NCC {assignment.get('ncc', 0.0):.3f} to representative, "
            f"fit-time winner {assignment.get('label')})"
        )
    else:
        lines.append("cluster      : unassigned (no atlas)")
    lines.append(
        f"decision     : {data.get('algorithm')} "
        f"(confidence {data.get('confidence', 0.0):.3f}"
        + (", DEGRADED" if data.get("degraded") else "")
        + (", STATIC FALLBACK" if data.get("fallback") else "")
        + ")"
    )
    probabilities = data.get("probabilities") or {}
    if probabilities:
        top = sorted(probabilities.items(), key=lambda kv: -kv[1])[:5]
        lines.append("confidences  : " + ", ".join(f"{k}={v:.3f}" for k, v in top))
    vote = data.get("vote") or {}
    if vote:
        lines.append(
            f"vote         : {len(vote.get('used', []))}/{vote.get('n_members')} "
            f"members voted"
            + (f"; failed {vote['failed']}" if vote.get("failed") else "")
            + (f"; quarantined {vote['skipped']}" if vote.get("skipped") else "")
        )
    race = explanation.get("race")
    if race is not None:
        rdata = race.get("data", {})
        lines.append(
            f"race         : {race.get('id')} — "
            f"{rdata.get('n_evaluations')} evaluations, "
            f"prune ratio {rdata.get('prune_ratio', 0.0):.1%}, "
            f"{len(rdata.get('elites', []))} elites"
        )
        for elite in rdata.get("elites", [])[:8]:
            scores = elite.get("fold_scores", [])
            lines.append(
                f"  elite      : {elite.get('classifier')} "
                f"(mean score {elite.get('mean_score', 0.0):.4f} "
                f"over {len(scores)} folds)"
            )
        iterations = rdata.get("iterations", [])
        for rec in iterations:
            lines.append(
                f"  iteration {rec.get('iteration')}: "
                f"{rec.get('n_evaluations')} evals, "
                f"{rec.get('n_early_terminated')} early-terminated, "
                f"{rec.get('n_ttest_pruned')} t-test pruned, "
                f"{rec.get('n_elite')} elite"
            )
    for label in explanation.get("labeling", [])[:3]:
        ldata = label.get("data", {})
        lines.append(
            f"labeling     : cluster {ldata.get('cluster_id')} "
            f"({ldata.get('n_members')} members, pattern "
            f"{ldata.get('pattern')}@{ldata.get('ratio')}) -> "
            f"winner {ldata.get('winner')}; ranking "
            + ">".join(ldata.get("ranking", [])[:4])
        )
    for impute in explanation.get("imputations", []):
        idata = impute.get("data", {})
        stats = idata.get("quality") or {}
        lines.append(
            f"imputation   : {idata.get('algorithm')} "
            f"({idata.get('n_missing')} values in {idata.get('elapsed_s', 0.0):.4f}s; "
            f"plausibility_z {stats.get('plausibility_z', 0.0):.3f}, "
            f"scale {stats.get('scale_ratio', 0.0):.2f}, "
            f"roughness {stats.get('roughness_ratio', 0.0):.2f})"
        )
    resilience = explanation.get("resilience", {})
    if resilience.get("degraded") or resilience.get("fallback") \
            or resilience.get("quarantined_members"):
        lines.append(
            "resilience   : degraded="
            f"{resilience.get('degraded')} fallback={resilience.get('fallback')} "
            f"quarantined={resilience.get('quarantined_members')}"
        )
    else:
        lines.append("resilience   : clean (no degradation events)")
    return "\n".join(lines)
