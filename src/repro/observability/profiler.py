"""Low-overhead sampling profiler with collapsed-stack output.

:class:`SamplingProfiler` periodically captures Python stacks and
aggregates them in the *collapsed* format consumed by flamegraph tools
(``flamegraph.pl``, speedscope, inferno)::

    repro.cli:main;repro.core.adarts:recommend_many;... 42

Two capture modes:

* ``"thread"`` (default) — a daemon thread walks
  ``sys._current_frames()`` every ``interval`` seconds.  Works from any
  thread, sees *all* threads, and adds only the cost of one stack walk
  per sample (<<1% at the default 5 ms interval).
* ``"signal"`` — ``signal.setitimer(ITIMER_PROF)`` interrupts the main
  thread and samples the interrupted frame, i.e. CPU-time sampling of
  the main thread only.  Must be started from the main thread; falls
  back to ``"thread"`` elsewhere (or where ``setitimer`` is missing).

Zero dependencies, no per-call instrumentation, safe to leave attached
in serving: the sampler never touches the frames it observes beyond
reading code metadata.  Attach via the CLI with ``python -m repro
profile`` or wrap any block::

    with SamplingProfiler(interval=0.005) as prof:
        engine.recommend_many(batch)
    prof.export("profile.collapsed")
"""

from __future__ import annotations

import pathlib
import signal
import sys
import threading
import time

from repro.observability.log import get_logger

_log = get_logger(__name__)

MODES = ("thread", "signal")


def _frame_label(frame) -> str:
    """``module:function`` label for one frame (flamegraph node name)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if not module:
        module = pathlib.Path(code.co_filename).stem
    return f"{module}:{code.co_name}"


def collapse_frame(frame, max_depth: int = 64) -> str:
    """Render a frame's stack as a root-first ``;``-joined collapsed line."""
    parts: list[str] = []
    while frame is not None and len(parts) < max_depth:
        parts.append(_frame_label(frame))
        frame = frame.f_back
    return ";".join(reversed(parts))


def parse_collapsed(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back into ``{stack: count}``.

    Inverse of :meth:`SamplingProfiler.collapsed`; blank lines and
    ``#`` comments are skipped.  Raises ``ValueError`` on a malformed
    line so corrupt exports fail loudly.
    """
    counts: dict[str, int] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            raise ValueError(f"malformed collapsed line {line_no}: {line!r}")
        counts[stack] = counts.get(stack, 0) + int(count)
    return counts


class SamplingProfiler:
    """Statistical profiler aggregating collapsed stacks.

    Parameters
    ----------
    interval:
        Target seconds between samples (default 5 ms).
    mode:
        ``"thread"`` (all threads, wall-clock) or ``"signal"``
        (main thread, CPU-time via ``ITIMER_PROF``).
    max_depth:
        Stack truncation depth per sample.
    """

    def __init__(
        self,
        interval: float = 0.005,
        mode: str = "thread",
        max_depth: int = 64,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.mode = mode
        self.max_depth = int(max_depth)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._running = False
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._previous_handler = None
        self.n_samples = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent)."""
        if self._running:
            return self
        self._running = True
        self.started_at = time.perf_counter()
        mode = self.mode
        if mode == "signal" and not self._signal_mode_available():
            _log.warning(
                "signal profiling unavailable here (not the main thread or "
                "no setitimer); falling back to thread sampling"
            )
            mode = "thread"
        self._active_mode = mode
        if mode == "signal":
            self._previous_handler = signal.signal(
                signal.SIGPROF, self._on_signal
            )
            signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        else:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent)."""
        if not self._running:
            return self
        self._running = False
        self.stopped_at = time.perf_counter()
        if self._active_mode == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
                self._previous_handler = None
        else:
            self._stop_event.set()
            if self._thread is not None:
                self._thread.join(timeout=max(1.0, 10 * self.interval))
                self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def elapsed(self) -> float:
        """Seconds the profiler has been (or was) attached."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return end - self.started_at

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @staticmethod
    def _signal_mode_available() -> bool:
        return (
            hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread()
        )

    def _record(self, stack: str) -> None:
        if not stack:
            return
        with self._lock:
            self._counts[stack] = self._counts.get(stack, 0) + 1
            self.n_samples += 1

    def _on_signal(self, signum, frame) -> None:
        self._record(collapse_frame(frame, self.max_depth))

    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                self._record(collapse_frame(frame, self.max_depth))

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Copy of the aggregated ``{collapsed stack: samples}`` map."""
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text, one ``stack count`` line per stack."""
        counts = self.counts()
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(counts.items())
        ) + ("\n" if counts else "")

    def export(self, path) -> pathlib.Path:
        """Write :meth:`collapsed` output to ``path``."""
        path = pathlib.Path(path)
        path.write_text(self.collapsed())
        return path

    def hotspots(self, top: int = 10) -> list[tuple[str, int]]:
        """Leaf functions ranked by self samples (descending)."""
        leaves: dict[str, int] = {}
        for stack, count in self.counts().items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: max(0, int(top))]

    def render_top(self, top: int = 10) -> str:
        """Human-readable hotspot table (``repro profile`` output)."""
        total = max(1, self.n_samples)
        lines = [
            f"{self.n_samples} samples over {self.elapsed:.2f}s "
            f"(mode={getattr(self, '_active_mode', self.mode)}, "
            f"interval={self.interval * 1000:.1f}ms)",
            f"{'samples':>9}  {'share':>6}  function",
        ]
        for leaf, count in self.hotspots(top):
            lines.append(f"{count:>9}  {count / total:>6.1%}  {leaf}")
        return "\n".join(lines)
