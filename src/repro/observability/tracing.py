"""Structured tracing: nested spans with JSON and Chrome trace_event export.

Design goals (in priority order):

1. **Zero cost when disabled.**  The module-level default tracer is a
   :class:`NullTracer` whose :meth:`~NullTracer.span` hands back a shared
   no-op singleton — no allocation, no lock, no clock read.  Library code
   can therefore instrument hot paths unconditionally.
2. **Zero dependencies.**  Stdlib only (``threading``, ``time``, ``json``).
3. **Thread safety.**  Finished spans are appended under a lock; the
   parent/child nesting stack is thread-local, so concurrent threads each
   get their own span tree sharing one tracer.

Typical use::

    from repro.observability import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        engine.fit_datasets(datasets)       # instrumented internally
    tracer.export_chrome_trace("trace.json")  # open in chrome://tracing
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import threading
import time
import uuid


class Span:
    """One timed, tagged, nestable unit of work.

    Spans are context managers produced by :meth:`Tracer.span`; entering
    starts the wall/CPU clocks and links the span to the innermost open
    span of the current thread, exiting stops the clocks and files the
    span with its tracer.
    """

    __slots__ = (
        "name",
        "tags",
        "span_id",
        "parent_id",
        "thread_id",
        "start_time",
        "wall_time",
        "cpu_time",
        "error",
        "_tracer",
        "_perf_start",
        "_cpu_start",
    )

    def __init__(self, tracer: "Tracer", name: str, tags: dict):
        self.name = str(name)
        self.tags = tags
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self.thread_id = threading.get_ident()
        self.start_time = 0.0  # epoch seconds
        self.wall_time = 0.0  # elapsed wall seconds
        self.cpu_time = 0.0  # elapsed process CPU seconds
        self.error: str | None = None
        self._tracer = tracer
        self._perf_start = 0.0
        self._cpu_start = 0.0

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start_time = time.time()
        self._cpu_start = time.process_time()
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_time = time.perf_counter() - self._perf_start
        self.cpu_time = time.process_time() - self._cpu_start
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unbalanced exit order
            stack.remove(self)
        self._tracer._record(self)
        return False  # never swallow exceptions

    # -- tag access ------------------------------------------------------
    def set_tag(self, key: str, value) -> "Span":
        """Attach/overwrite one tag; chainable."""
        self.tags[key] = value
        return self

    def as_dict(self) -> dict:
        """JSON-friendly representation of the finished span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_time": self.start_time,
            "wall_time": self.wall_time,
            "cpu_time": self.cpu_time,
            "error": self.error,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_time:.6f}s, tags={self.tags})"


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value) -> "_NullSpan":
        return self


#: Module-wide no-op span singleton (identity-comparable in tests).
NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every span is the shared no-op singleton."""

    enabled = False

    def span(self, name: str, **tags) -> _NullSpan:
        """Return the shared no-op span; ``name``/``tags`` are ignored."""
        return NULL_SPAN

    def current_trace_id(self) -> str | None:
        """A null tracer carries no trace context."""
        return None

    def finished_spans(self) -> list[Span]:
        """A null tracer never records anything."""
        return []

    def clear(self) -> None:
        """Nothing to clear."""


#: Module-wide null tracer singleton; the default until ``set_tracer``.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects finished :class:`Span` objects, thread-safely.

    Parameters
    ----------
    name:
        Process-level label used in Chrome trace export.
    """

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = str(name)
        #: Stable id of this tracer instance; prefixes every trace id so
        #: correlation keys from different processes/runs never collide.
        self.trace_id = uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._counter = itertools.count(1)

    # -- internals -------------------------------------------------------
    def _next_id(self) -> int:
        return next(self._counter)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- public API ------------------------------------------------------
    def span(self, name: str, **tags) -> Span:
        """Create a new span context manager under the current thread."""
        return Span(self, name, tags)

    def current_span(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> str | None:
        """Correlation key of the calling thread's active trace.

        ``<tracer id>:<root span id>`` while a span is open (every nested
        span of one top-level operation shares it), ``None`` otherwise.
        Ledger rows and log records embed this key so spans, logs, and
        repair provenance can be joined after the fact.
        """
        stack = self._stack()
        if not stack:
            return None
        return f"{self.trace_id}:{stack[0].span_id}"

    def finished_spans(self) -> list[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop all recorded spans."""
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    # -- export ----------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """All finished spans as plain dicts."""
        return [s.as_dict() for s in self.finished_spans()]

    def to_json(self, indent: int | None = None) -> str:
        """Serialize finished spans as a JSON array."""
        return json.dumps(self.to_dicts(), indent=indent, default=str)

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` document (open in ``chrome://tracing``).

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps; tags travel in ``args``.
        """
        pid = os.getpid()
        events = []
        for span in self.finished_spans():
            args = {k: _jsonable(v) for k, v in span.tags.items()}
            args["cpu_time"] = span.cpu_time
            if span.error:
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "cat": str(span.tags.get("subsystem", "repro")),
                    "ph": "X",
                    "ts": span.start_time * 1e6,
                    "dur": span.wall_time * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"tracer": self.name},
        }

    def export_json(self, path) -> pathlib.Path:
        """Write the plain-JSON span list to ``path``."""
        path = pathlib.Path(path)
        path.write_text(self.to_json(indent=2))
        return path

    def export_chrome_trace(self, path) -> pathlib.Path:
        """Write the Chrome trace_event document to ``path``."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(), default=str))
        return path


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Module-level default tracer (a no-op unless explicitly installed).
# ---------------------------------------------------------------------------
_default_tracer: Tracer | NullTracer = NULL_TRACER
_default_lock = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The currently installed tracer (a shared no-op by default)."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide default; ``None`` resets."""
    global _default_tracer
    with _default_lock:
        _default_tracer = tracer if tracer is not None else NULL_TRACER
    return _default_tracer


class use_tracer:
    """Context manager installing a tracer for the duration of a block.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with use_tracer(tracer):
    ...     with get_tracer().span("work"):
    ...         pass
    >>> len(tracer)
    1
    """

    def __init__(self, tracer: Tracer | None):
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = get_tracer()
        return set_tracer(self.tracer)

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(
            self._previous if isinstance(self._previous, Tracer) else None
        )
        return False


def span(name: str, **tags):
    """Open a span on the default tracer (no-op when none installed)."""
    return _default_tracer.span(name, **tags)
