"""Stdlib ``logging`` integration with a silent-by-default policy.

Library modules obtain loggers via :func:`get_logger`; the ``repro`` root
logger carries a ``NullHandler`` so importing the library never prints
anything or trips the "no handlers could be found" warning.  Applications
(and the CLI's ``--verbose`` flag) opt in with
:func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys

#: Root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Silent default: the library never logs unless the host application
# attaches handlers (directly or via enable_console_logging).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("repro.core.modelrace")`` and
    ``get_logger("core.modelrace")`` return the same logger; ``None``
    returns the root ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable_console_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` root logger.

    Idempotent: a second call adjusts the existing handler's level instead
    of stacking duplicate handlers.  Returns the handler so callers can
    remove it with :func:`disable_console_logging`.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    stream = stream if stream is not None else sys.stderr
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            root.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def disable_console_logging(handler: logging.Handler | None = None) -> None:
    """Detach ``handler`` (or every non-null handler) from the root logger."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    targets = (
        [handler]
        if handler is not None
        else [
            h
            for h in root.handlers
            if not isinstance(h, logging.NullHandler)
        ]
    )
    for target in targets:
        root.removeHandler(target)
