"""Stdlib ``logging`` integration with a silent-by-default policy.

Library modules obtain loggers via :func:`get_logger`; the ``repro`` root
logger carries a ``NullHandler`` so importing the library never prints
anything or trips the "no handlers could be found" warning.  Applications
(and the CLI's ``--verbose`` flag) opt in with
:func:`enable_console_logging`.

Trace correlation: every record emitted through the ``repro`` hierarchy
is stamped with the calling thread's active trace id
(:meth:`~repro.observability.tracing.Tracer.current_trace_id`) as
``record.trace_id`` by :class:`TraceContextFilter`, and the console
format renders it — so log lines, tracer spans, and repair-ledger rows
all share one correlation key.
"""

from __future__ import annotations

import logging
import sys

#: Root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s [%(trace_id)s] %(name)s: %(message)s"

#: Placeholder rendered when no span is open (keeps columns aligned).
NO_TRACE = "-"


class TraceContextFilter(logging.Filter):
    """Inject the active span's trace id into every log record.

    Attached to the ``repro`` root logger at import time, so the
    ``trace_id`` attribute is available to *any* handler/formatter a host
    application installs — not only the console handler below.  Records
    that already carry a ``trace_id`` (passed via ``extra=``) win over
    the ambient span context.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "trace_id"):
            # Local import: log.py must stay importable before tracing.
            from repro.observability.tracing import get_tracer

            record.trace_id = get_tracer().current_trace_id() or NO_TRACE
        return True

# Silent default: the library never logs unless the host application
# attaches handlers (directly or via enable_console_logging).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
# One shared context filter instance; addFilter is idempotent for the
# same object, so repeated imports/reloads never stack duplicates.
_TRACE_FILTER = TraceContextFilter()
logging.getLogger(ROOT_LOGGER_NAME).addFilter(_TRACE_FILTER)


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("repro.core.modelrace")`` and
    ``get_logger("core.modelrace")`` return the same logger; ``None``
    returns the root ``repro`` logger.
    """
    if not name:
        logger = logging.getLogger(ROOT_LOGGER_NAME)
    elif name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        logger = logging.getLogger(name)
    else:
        logger = logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
    # Logger-level filters are not inherited, so each library logger gets
    # the shared trace-context filter directly; the record is stamped
    # before *any* handler (including host-application ones) formats it.
    if _TRACE_FILTER not in logger.filters:
        logger.addFilter(_TRACE_FILTER)
    return logger


def enable_console_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` root logger.

    Idempotent: a second call adjusts the existing handler's level instead
    of stacking duplicate handlers.  Returns the handler so callers can
    remove it with :func:`disable_console_logging`.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    stream = stream if stream is not None else sys.stderr
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            root.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT))
    # Handler-level safety net: records reaching this handler from a
    # logger without the context filter still get a trace_id attribute
    # before the formatter renders %(trace_id)s.
    handler.addFilter(_TRACE_FILTER)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def disable_console_logging(handler: logging.Handler | None = None) -> None:
    """Detach ``handler`` (or every non-null handler) from the root logger."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    targets = (
        [handler]
        if handler is not None
        else [
            h
            for h in root.handlers
            if not isinstance(h, logging.NullHandler)
        ]
    )
    for target in targets:
        root.removeHandler(target)
