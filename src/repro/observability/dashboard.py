"""repro.observability.dashboard — the ``repro top`` live text dashboard.

Renders a :class:`~repro.observability.serving.HealthSnapshot` document
(live object or previously exported JSON) into a fixed-width ANSI
terminal dashboard: SLO policy status with fast/slow burn rates,
sketch-backed latency quantiles, throughput, recommendation mix,
resource gauges (RSS + per-component live bytes), kernel counters, and
cache hit rates.  The companion :func:`render_bench_trend` turns
committed ``BENCH_*.json`` documents plus the CI baseline
(``benchmarks/bench_baseline.json``) into a per-workload trend table
with regression deltas — the human-readable face of
``benchmarks/check_regression.py``.

Everything here is plain string formatting: no curses, no third-party
TUI.  The refresh loop simply re-prints the dashboard behind an ANSI
clear (``ESC[2J ESC[H``), which degrades gracefully when piped to a
file (``--once`` in CI produces a clean single frame).
"""

from __future__ import annotations

import json
import pathlib

#: ANSI clear-screen + cursor-home prefix used by the refresh loops.
ANSI_CLEAR = "\x1b[2J\x1b[H"

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def human_bytes(n) -> str:
    """``1536`` -> ``'1.5 KiB'`` (fixed 4-significant rendering)."""
    n = float(n or 0)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(n)} B"
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TiB"  # pragma: no cover - unreachable


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    return f"{float(seconds) * 1000.0:.1f}ms"


def _bar(fraction: float, width: int = 20) -> str:
    """A ``[#####-----]`` gauge for a 0..1 fraction (clamped)."""
    fraction = min(1.0, max(0.0, float(fraction)))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def load_snapshot(path) -> dict:
    """Read a health-snapshot JSON document written by ``repro monitor``."""
    path = pathlib.Path(path)
    document = json.loads(path.read_text())
    if not isinstance(document, dict):
        raise ValueError(f"{path} does not contain a health snapshot")
    return document


def render_top(snapshot: dict, *, color: bool = False, width: int = 78) -> str:
    """Render one dashboard frame from a health-snapshot ``dict``.

    Accepts both a live ``HealthSnapshot.as_dict()`` and a re-loaded
    export; every section degrades to a placeholder when its data is
    missing, so old snapshots (pre-SLO schema) still render.
    """
    lines: list[str] = []
    rule = "=" * width
    thin = "-" * width

    build = snapshot.get("build") or {}
    head = (
        f"repro top — v{build.get('version', '?')}"
        f" @ {build.get('git_sha', 'unknown')}"
    )
    stamp = snapshot.get("generated_at", "-")
    pad = max(1, width - len(head) - len(stamp))
    lines.append(_paint(head, _BOLD, color) + " " * pad + _paint(stamp, _DIM, color))
    lines.append(rule)

    # -- throughput / latency -------------------------------------------
    uptime = float(snapshot.get("uptime_s") or 0.0)
    n_requests = int(snapshot.get("n_requests") or 0)
    n_series = int(snapshot.get("n_series") or 0)
    rps = n_requests / uptime if uptime > 0 else 0.0
    sps = n_series / uptime if uptime > 0 else 0.0
    lines.append(
        f"uptime {uptime:8.1f}s   requests {n_requests:6d} ({rps:6.1f}/s)"
        f"   series {n_series:6d} ({sps:6.1f}/s)"
    )
    latency = snapshot.get("latency") or {}
    lines.append(
        "request latency   "
        f"p50 {_fmt_ms(latency.get('sketch_p50', latency.get('p50'))):>9}  "
        f"p95 {_fmt_ms(latency.get('p95')):>9}  "
        f"p99 {_fmt_ms(latency.get('sketch_p99', latency.get('p99'))):>9}  "
        f"max {_fmt_ms(latency.get('max')):>9}"
    )
    lines.append(thin)

    # -- SLO policies ---------------------------------------------------
    slo = snapshot.get("slo")
    lines.append(_paint("SLO", _BOLD, color))
    if not slo:
        lines.append("  (slo tracking disabled)")
    else:
        lines.append(
            f"  {'policy':<14} {'objective':<34} {'burn f/s':>12} "
            f"{'budget':>7} {'state':>6}"
        )
        for policy in slo.get("policies", ()):
            alerting = bool(policy.get("alerting"))
            state = "ALERT" if alerting else "ok"
            state = _paint(
                state, _RED if alerting else _GREEN, color
            )
            remaining = policy.get("budget_remaining")
            lines.append(
                f"  {policy.get('policy', '?'):<14} "
                f"{policy.get('objective', '')[:34]:<34} "
                f"{float(policy.get('fast_burn') or 0.0):5.1f}/"
                f"{float(policy.get('slow_burn') or 0.0):5.1f} "
                f"{'' if remaining is None else format(float(remaining), '6.1%'):>7} "
                f"{state:>6}"
            )
        n_alerts = int(slo.get("n_alerts") or 0)
        sketch = slo.get("latency_sketch") or {}
        lines.append(
            f"  events {int(slo.get('n_events') or 0):7d}   "
            f"alerts fired {n_alerts:4d}   "
            f"per-series p50 {_fmt_ms(sketch.get('p50'))} / "
            f"p99 {_fmt_ms(sketch.get('p99'))}"
        )
        slices = slo.get("slices") or {}
        worst = sorted(
            slices.items(),
            key=lambda kv: -sum((kv[1].get("bad") or {}).values()),
        )[:4]
        for key, row in worst:
            bad = sum((row.get("bad") or {}).values())
            lines.append(
                f"    slice {key:<24} n {int(row.get('n') or 0):6d}  "
                f"errors {int(row.get('errors') or 0):4d}  bad {bad:5d}  "
                f"p99 {_fmt_ms(row.get('p99'))}"
            )
    lines.append(thin)

    # -- resources ------------------------------------------------------
    resources = snapshot.get("resources") or {}
    process = resources.get("process") or {}
    lines.append(_paint("RESOURCES", _BOLD, color))
    rss = process.get("rss_bytes")
    hwm = process.get("hwm_bytes")
    if rss is not None:
        frac = float(rss) / float(hwm) if hwm else 0.0
        lines.append(
            f"  rss {human_bytes(rss):>10}  hwm {human_bytes(hwm):>10}  "
            f"[{_bar(frac)}]"
        )
    accounts = resources.get("accounts") or {}
    for name in sorted(accounts):
        row = accounts[name]
        lines.append(
            f"  {name:<16} {human_bytes(row.get('bytes')):>10} live  "
            f"peak {human_bytes(row.get('peak_bytes')):>10}  "
            f"items {int(row.get('items') or 0):6d}"
        )
    bank_resident = (accounts.get("series_bank") or {}).get("bytes") or 0
    bank_disk = (accounts.get("series_bank_disk") or {}).get("bytes") or 0
    if bank_disk:
        # Out-of-core banks: make the resident-vs-spilled split explicit
        # (the accounts above show it only as two unrelated rows).
        total = bank_resident + bank_disk
        lines.append(
            f"  bank storage: {human_bytes(bank_resident)} resident / "
            f"{human_bytes(bank_disk)} on disk  "
            f"[{_bar(bank_resident / total if total else 0.0)}]"
        )
    kernels = resources.get("kernels") or {}
    if kernels:
        lines.append(
            f"  {'kernel':<22} {'calls':>7} {'moved':>10} "
            f"{'chunks':>7} {'scratch':>8}"
        )
        for name in sorted(kernels):
            row = kernels[name]
            lines.append(
                f"  {name:<22} {int(row.get('calls') or 0):7d} "
                f"{human_bytes(row.get('bytes_moved')):>10} "
                f"{int(row.get('chunks') or 0):7d} "
                f"{int(row.get('scratch_allocations') or 0):8d}"
            )
    decisions = resources.get("backend_decisions") or {}
    if decisions:
        rendered = "  ".join(
            f"{name}={count}" for name, count in sorted(decisions.items())
        )
        lines.append(f"  backend decisions: {rendered}")
    workers = {
        name: stats["workers"]
        for name, stats in sorted((snapshot.get("backends") or {}).items())
        if isinstance(stats, dict) and stats.get("workers")
    }
    if workers:
        rendered = "  ".join(
            f"{name}={int(count)}" for name, count in workers.items()
        )
        lines.append(f"  backend workers (peak): {rendered}")
    lines.append(thin)

    # -- caches / mix / alerts ------------------------------------------
    lines.append(_paint("CACHES & MIX", _BOLD, color))
    for name, stats in sorted((snapshot.get("caches") or {}).items()):
        if not stats:
            continue
        rate = stats.get("hit_rate")
        extra = (
            f"  bytes {human_bytes(stats['bytes']):>10}"
            if "bytes" in stats
            else ""
        )
        lines.append(
            f"  {name:<16} hit rate "
            f"{'' if rate is None else format(float(rate), '6.1%'):>7}  "
            f"hits {int(stats.get('hits') or 0):6d}  "
            f"misses {int(stats.get('misses') or 0):6d}{extra}"
        )
    mix = (snapshot.get("recommendation_mix") or {}).get("fractions") or {}
    if mix:
        rendered = "  ".join(
            f"{name} {float(frac):.0%}"
            for name, frac in sorted(mix.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"  mix: {rendered}")
    alerts = snapshot.get("alerts") or {}
    hot = {k: v for k, v in alerts.items() if v}
    if hot:
        rendered = "  ".join(f"{k}={v}" for k, v in sorted(hot.items()))
        lines.append("  " + _paint(f"alerts: {rendered}", _YELLOW, color))
    else:
        lines.append("  alerts: none")
    drift = snapshot.get("drift")
    if drift:
        lines.append(
            f"  drift: psi {float(drift.get('psi_max') or 0.0):.3f}  "
            f"ks {float(drift.get('ks_max') or 0.0):.3f}  "
            f"alerting {bool(drift.get('alerting'))}"
        )
    lines.append(rule)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# repro bench trend
# ---------------------------------------------------------------------------

def _timing_keys(arms: dict) -> tuple[str, ...]:
    return tuple(
        sorted(
            key
            for key, value in arms.items()
            if key.endswith("_s") and isinstance(value, (int, float))
        )
    )


def bench_trend_rows(
    baseline: dict, fresh: dict, *, min_seconds: float = 0.01
) -> list[dict]:
    """Per-(workload, arm) trend rows comparing fresh timings to baseline.

    Mirrors the arm discovery of ``benchmarks/check_regression.py``
    (numeric ``*_s`` keys) so the table and the CI gate always agree on
    what is measured.  Each row carries ``ratio`` (fresh/baseline; None
    when either side is missing) and ``noise`` (both sides under
    ``min_seconds``, ignored by the gate).
    """
    rows: list[dict] = []
    for workload in sorted(set(baseline) | set(fresh)):
        base_arms = baseline.get(workload) or {}
        fresh_arms = fresh.get(workload) or {}
        arms = sorted(
            set(_timing_keys(base_arms)) | set(_timing_keys(fresh_arms))
        )
        for key in arms:
            base = base_arms.get(key)
            new = fresh_arms.get(key)
            ratio = None
            if base is not None and new is not None and float(base) > 0:
                ratio = float(new) / float(base)
            rows.append(
                {
                    "workload": workload,
                    "arm": key,
                    "baseline_s": None if base is None else float(base),
                    "fresh_s": None if new is None else float(new),
                    "ratio": ratio,
                    "noise": (
                        base is not None
                        and new is not None
                        and float(base) < min_seconds
                        and float(new) < min_seconds
                    ),
                }
            )
    return rows


def render_bench_trend(
    baseline: dict,
    fresh: dict,
    *,
    threshold: float = 1.5,
    min_seconds: float = 0.01,
    color: bool = False,
    include_missing: bool = False,
) -> str:
    """The ``repro bench trend`` table: per-arm deltas with flags.

    Flags: ``REGRESSED`` (ratio beyond ``threshold``, same bar as the CI
    gate), ``improved`` (>=10% faster), ``noise`` (both arms under
    ``min_seconds``), ``new``/``missing`` for one-sided entries.
    Baseline workloads absent from the fresh documents are summarized in
    the footer rather than listed (a trend run usually covers a subset
    of the baseline); pass ``include_missing=True`` to list them — the
    CI gate, not this table, is what fails on genuinely missing arms.
    """
    rows = bench_trend_rows(baseline, fresh, min_seconds=min_seconds)
    n_missing = sum(1 for row in rows if row["fresh_s"] is None)
    if not include_missing:
        rows = [row for row in rows if row["fresh_s"] is not None]
    out = [
        f"{'workload':<22} {'arm':<14} {'baseline':>10} {'fresh':>10} "
        f"{'delta':>8}  flag",
        "-" * 74,
    ]
    n_regressed = 0
    for row in rows:
        base, new, ratio = row["baseline_s"], row["fresh_s"], row["ratio"]
        if base is None:
            flag, delta = "new", "-"
        elif new is None:
            flag, delta = "missing", "-"
        else:
            delta = f"{(ratio - 1.0) * +100.0:+.1f}%"
            if row["noise"]:
                flag = "noise"
            elif ratio > threshold:
                flag = _paint("REGRESSED", _RED, color)
                n_regressed += 1
            elif ratio <= 0.9:
                flag = _paint("improved", _GREEN, color)
            else:
                flag = "ok"
        out.append(
            f"{row['workload']:<22} {row['arm']:<14} "
            f"{'-' if base is None else format(base, '9.4f') + 's':>10} "
            f"{'-' if new is None else format(new, '9.4f') + 's':>10} "
            f"{delta:>8}  {flag}"
        )
    out.append("-" * 74)
    verdict = (
        f"{n_regressed} regression(s) beyond {threshold:.2f}x"
        if n_regressed
        else f"no regressions beyond {threshold:.2f}x"
    )
    tail = f"{len(rows)} arms compared — {verdict}"
    if n_missing and not include_missing:
        tail += f" ({n_missing} baseline-only arms not in this run)"
    out.append(tail)
    return "\n".join(out)
