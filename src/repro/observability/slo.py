"""SLO engine: streaming quantile sketches and burn-rate alerting.

The serving layer's latency statistics used to live only in bounded
:class:`~repro.observability.serving.RollingWindow` buffers summarized
with batch ``np.percentile`` — fine for a demo, but a window forgets
exactly the tail observations an SLO cares about, and "is the p99 under
50 ms" is a *policy* question, not a summary statistic.  This module is
the policy layer:

* :class:`QuantileSketch` — a mergeable, picklable, fixed-memory
  KLL-style streaming quantile estimator.  Feeding every observation of
  a process lifetime costs O(k) memory and gives p50/p99 estimates
  within a fraction of a percent of the exact batch percentile (the
  parity contract is tested at n=10k over several distributions).
  Sketches merge, so per-shard sketches can be combined into a fleet
  view — the property the upcoming sharded server needs.
* :class:`SloPolicy` — one objective ("p99 latency <= 50ms", "error
  rate <= 0.1%") expressed as an *error budget*: the fraction of events
  allowed to be bad.  A latency event is bad when it exceeds the
  threshold; an error event is bad when the request failed.
* :class:`SloTracker` — evaluates policies continuously over
  multi-window burn rates (fast 5m / slow 1h by default).  The burn
  rate is ``bad_fraction / budget``; 1.0 means the budget is being
  consumed exactly at the sustainable rate, 14.4 means the monthly
  budget burns in two days.  An alert fires when **both** windows burn
  above their thresholds (the standard multi-window guard against
  one-spike pages) and re-arms once the fast window recovers, exactly
  like :class:`~repro.observability.serving.DriftDetector` alerts.
  Alerts are announced through the
  :class:`~repro.observability.observer.ServingObserver` bus
  (``on_slo_alert``) and a ``repro_slo_alerts_total`` counter.

Per-imputer and per-cluster **slices** reuse the ledger scorecard keys
(``imputer:<algorithm>``, ``cluster:<id>``): each slice keeps its own
latency sketch and per-policy bad counts, so the health document can
show which imputer or fit-time cluster is eating the budget.

Time is injectable (``clock=...``) so burn-rate behaviour is exactly
testable with a fake clock; production uses ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.observability.log import get_logger
from repro.observability.metrics import get_metrics

_log = get_logger(__name__)


# ---------------------------------------------------------------------------
# Streaming quantile sketch
# ---------------------------------------------------------------------------
class QuantileSketch:
    """Mergeable KLL-style streaming quantile sketch with fixed memory.

    Observations land in a hierarchy of level buffers; level ``l`` items
    each represent ``2**l`` original observations.  When the sketch
    exceeds its memory budget the fullest low level is sorted and every
    other item (deterministic alternating offset) is promoted one level
    up — the classic KLL compaction, with REQ-style tail protection (the
    extreme items of each level never compact) so the upper quantiles an
    SLO pages on stay near-exact.  Memory stays O(k); rank error shrinks
    as ``k`` grows (the default ``k=1024`` keeps p50/p95/p99 within 1%
    relative error at n=10k across normal/lognormal/uniform/exponential
    streams, which the test suite pins).

    The sketch is:

    * **picklable** — plain lists and ints, no locks in the state
      (the lock is rebuilt on unpickle);
    * **mergeable** — :meth:`merge` concatenates level buffers and
      re-compacts, so merge-of-halves ≈ whole-stream;
    * **exact below capacity** — until the first compaction the sketch
      holds the raw sample and :meth:`quantile` equals
      ``np.percentile`` bit-for-bit.
    """

    __slots__ = (
        "k", "_levels", "_count", "_sum", "_min", "_max", "_coin", "_lock",
    )

    def __init__(self, k: int = 1024):
        if k < 8:
            raise ValueError("sketch k must be >= 8")
        self.k = int(k)
        self._levels: list[list[float]] = [[]]
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        # Deterministic compaction coin (xorshift state).  Seeding from k
        # keeps behaviour reproducible run-to-run without any global RNG.
        self._coin = (self.k * 2654435761) & 0xFFFFFFFF or 1
        self._lock = threading.Lock()

    # -- pickling (drop the lock) ---------------------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "k": self.k,
                "levels": [list(level) for level in self._levels],
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "coin": self._coin,
            }

    def __setstate__(self, state: dict) -> None:
        self.k = state["k"]
        self._levels = [list(level) for level in state["levels"]]
        self._count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]
        self._coin = state["coin"]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Lifetime number of observations folded into the sketch."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact running mean of every observation."""
        return self._sum / self._count if self._count else 0.0

    def _capacity(self, level: int, n_levels: int) -> int:
        """Target capacity of ``level`` given ``n_levels`` total levels."""
        # Higher levels hold more items (they are cheaper per represented
        # observation); the 2/3 geometric decay is the KLL schedule.
        cap = int(self.k * (2.0 / 3.0) ** (n_levels - 1 - level))
        return max(8, cap)

    def _flip(self) -> int:
        """Deterministic coin: one xorshift32 step, returns 0 or 1."""
        x = self._coin
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._coin = x
        return x & 1

    def _compact_locked(self) -> None:
        """Compact the fullest over-capacity level (caller holds the lock)."""
        n_levels = len(self._levels)
        total_cap = sum(self._capacity(lv, n_levels) for lv in range(n_levels))
        if sum(len(level) for level in self._levels) <= total_cap:
            return
        for lv in range(n_levels):
            level = self._levels[lv]
            cap = self._capacity(lv, n_levels)
            if len(level) > cap:
                level.sort()
                # Tail protection (REQ-style): the lowest/highest few
                # items stay at this level with their exact weight, so
                # extreme quantiles — the ones SLOs page on — keep
                # near-exact resolution while the bulk compacts.
                tail = max(2, cap // 6)
                promoted = level[tail:-tail][self._flip()::2]
                if lv + 1 == n_levels:
                    self._levels.append([])
                self._levels[lv + 1].extend(promoted)
                self._levels[lv] = level[:tail] + level[-tail:]
                return

    def update(self, value: float) -> None:
        """Fold one observation into the sketch (non-finite are dropped)."""
        value = float(value)
        if not np.isfinite(value):
            return
        with self._lock:
            self._levels[0].append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._compact_locked()

    def extend(self, values) -> None:
        """Fold many observations (any array-like)."""
        for value in np.asarray(values, dtype=float).ravel():
            self.update(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (returns ``self``).

        Level buffers concatenate weight-for-weight, then the combined
        sketch re-compacts down to its own memory budget, so merging N
        shard sketches costs the same memory as one.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError("can only merge another QuantileSketch")
        # Snapshot the other side first: merging a sketch into itself or
        # concurrent updates must not corrupt the level lists.
        state = other.__getstate__()
        with self._lock:
            for lv, level in enumerate(state["levels"]):
                while lv >= len(self._levels):
                    self._levels.append([])
                self._levels[lv].extend(level)
            self._count += state["count"]
            self._sum += state["sum"]
            self._min = min(self._min, state["min"])
            self._max = max(self._max, state["max"])
            for _ in range(len(self._levels) + 8):
                before = sum(len(level) for level in self._levels)
                self._compact_locked()
                if sum(len(level) for level in self._levels) == before:
                    break
        return self

    # ------------------------------------------------------------------
    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        """(values, weights) of every stored item, unsorted."""
        with self._lock:
            values: list[float] = []
            weights: list[float] = []
            for lv, level in enumerate(self._levels):
                values.extend(level)
                weights.extend([float(1 << lv)] * len(level))
        return np.asarray(values, dtype=float), np.asarray(weights, dtype=float)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1).

        Uses the weighted analogue of ``np.percentile``'s linear
        interpolation: stored item ``i`` (value-sorted) sits at rank
        position ``cumw_{i-1} + (w_i - 1) / 2`` and the target rank
        ``q * (count - 1)`` interpolates between its bracketing items.
        With no compactions (all weights 1) this is exactly
        ``np.percentile``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        values, weights = self._weighted_items()
        if values.size == 0:
            return 0.0
        order = np.argsort(values, kind="stable")
        values = values[order]
        weights = weights[order]
        positions = np.cumsum(weights) - (weights + 1.0) / 2.0
        target = q * (weights.sum() - 1.0)
        if target <= positions[0]:
            return float(self._min)
        if target >= positions[-1]:
            return float(self._max)
        idx = int(np.searchsorted(positions, target, side="right"))
        lo, hi = positions[idx - 1], positions[idx]
        frac = 0.0 if hi == lo else (target - lo) / (hi - lo)
        return float(values[idx - 1] + frac * (values[idx] - values[idx - 1]))

    def quantiles(self, qs) -> list[float]:
        """Estimate several quantiles in one pass."""
        return [self.quantile(q) for q in qs]

    def summary(self) -> dict:
        """Health-document payload: count/mean/min/max/p50/p95/p99."""
        if self._count == 0:
            return {
                "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        p50, p95, p99 = self.quantiles((0.5, 0.95, 0.99))
        return {
            "count": int(self._count),
            "mean": float(self.mean),
            "min": float(self._min),
            "max": float(self._max),
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stored = sum(len(level) for level in self._levels)
        return (
            f"QuantileSketch(k={self.k}, count={self._count}, "
            f"stored={stored}, levels={len(self._levels)})"
        )


# ---------------------------------------------------------------------------
# SLO policies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SloPolicy:
    """One service-level objective expressed as an error budget.

    Every event is classified good or bad; the objective holds while the
    bad fraction stays at or under ``budget``.  For ``kind="latency"``
    an event is bad when its latency exceeds ``threshold`` seconds —
    "p99 <= 50ms" is therefore ``threshold=0.05, budget=0.01``.  For
    ``kind="error_rate"`` an event is bad when the request errored.

    Burn-rate alerting follows the multi-window recipe: the alert
    condition is ``burn(fast_window) >= fast_burn`` AND
    ``burn(slow_window) >= slow_burn``, where ``burn = bad_fraction /
    budget``.  Defaults (14.4 / 6.0 over 5m / 1h) are the conventional
    fast-page thresholds.
    """

    name: str
    kind: str  # "latency" | "error_rate"
    budget: float
    threshold: float = 0.0  # seconds; latency policies only
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    min_events: int = 10

    def __post_init__(self):
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.budget < 1.0:
            raise ValueError("budget must be in (0, 1)")
        if self.kind == "latency" and self.threshold <= 0.0:
            raise ValueError("latency policies need a positive threshold")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")

    @classmethod
    def latency(
        cls,
        name: str,
        *,
        quantile: float = 0.99,
        threshold_s: float = 0.05,
        **kwargs,
    ) -> "SloPolicy":
        """Quantile-style spelling: "p{quantile} latency <= threshold".

        ``quantile=0.99`` allows 1% of events over the threshold, i.e.
        ``budget = 1 - quantile``.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        return cls(
            name=name,
            kind="latency",
            budget=1.0 - quantile,
            threshold=float(threshold_s),
            **kwargs,
        )

    @classmethod
    def error_rate(cls, name: str, *, budget: float = 0.001, **kwargs) -> "SloPolicy":
        """Error-rate spelling: "error rate <= budget"."""
        return cls(name=name, kind="error_rate", budget=float(budget), **kwargs)

    def describe(self) -> str:
        """Human rendering for the dashboard / alert messages."""
        if self.kind == "latency":
            quantile = 1.0 - self.budget
            return (
                f"p{quantile * 100:g} latency <= {self.threshold * 1000:g}ms "
                f"over {self.fast_window_s / 60:g}m/{self.slow_window_s / 60:g}m"
            )
        return (
            f"error rate <= {self.budget:.3%} "
            f"over {self.fast_window_s / 60:g}m/{self.slow_window_s / 60:g}m"
        )


def default_policies() -> list[SloPolicy]:
    """The stock serving policies installed by :class:`SloTracker`.

    Deliberately loose (p99 <= 1s, errors <= 1%) so an uncalibrated
    deployment monitors without paging; production callers pass their
    own measured objectives.
    """
    return [
        SloPolicy.latency("latency_p50", quantile=0.5, threshold_s=0.25),
        SloPolicy.latency("latency_p99", quantile=0.99, threshold_s=1.0),
        SloPolicy.error_rate("error_rate", budget=0.01),
    ]


@dataclass
class SloAlert:
    """One burn-rate excursion (fired once per excursion, like drift)."""

    policy: str
    kind: str
    budget: float
    fast_burn: float
    slow_burn: float
    fast_threshold: float
    slow_threshold: float
    n_events: int
    message: str = ""

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "kind": self.kind,
            "budget": self.budget,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_threshold": self.fast_threshold,
            "slow_threshold": self.slow_threshold,
            "n_events": self.n_events,
            "message": self.message,
        }


class _PolicyState:
    """Mutable tracking state of one policy: bucketed good/bad counts."""

    __slots__ = ("policy", "buckets", "alert_active", "n_alerts", "last_status")

    def __init__(self, policy: SloPolicy):
        self.policy = policy
        #: deque of ``[bucket_start_s, good, bad]`` (monotonic-clock
        #: buckets), oldest first, pruned past the slow window.
        self.buckets: deque[list] = deque()
        self.alert_active = False
        self.n_alerts = 0
        self.last_status: dict | None = None

    def record(self, now: float, bucket_s: float, bad: bool) -> None:
        start = now - (now % bucket_s)
        if not self.buckets or self.buckets[-1][0] != start:
            self.buckets.append([start, 0, 0])
            horizon = now - self.policy.slow_window_s - bucket_s
            while self.buckets and self.buckets[0][0] < horizon:
                self.buckets.popleft()
        slot = self.buckets[-1]
        if bad:
            slot[2] += 1
        else:
            slot[1] += 1

    def window_counts(self, now: float, window_s: float) -> tuple[int, int]:
        """(good, bad) within the trailing ``window_s`` seconds."""
        horizon = now - window_s
        good = bad = 0
        for start, g, b in reversed(self.buckets):
            if start + 1e-9 < horizon - 1e-9 and start < horizon:
                break
            good += g
            bad += b
        return good, bad


class SloTracker:
    """Continuous SLO evaluation over a stream of serving events.

    Feed it with :meth:`record_latency` (one call per request or per
    series); every call updates the overall latency sketch, the
    per-slice sketches, every policy's windowed good/bad counts, and
    re-evaluates the burn-rate alert conditions.

    Parameters
    ----------
    policies:
        The :class:`SloPolicy` set to evaluate (default
        :func:`default_policies`).
    clock:
        Monotonic-seconds callable; inject a fake for deterministic
        tests.
    bucket_s:
        Width of the windowed-count buckets (trades memory for window
        resolution; 10s keeps a 1h window in 360 buckets).
    sketch_k:
        Memory/accuracy knob of the latency sketches.
    max_slices:
        Cardinality cap on tracked slices; further keys fold into an
        ``"overflow"`` slice (mirroring the metrics registry's cap).
    """

    def __init__(
        self,
        policies=None,
        *,
        clock=time.monotonic,
        bucket_s: float = 10.0,
        sketch_k: int = 1024,
        max_slices: int = 64,
    ):
        self.policies = list(policies) if policies is not None else default_policies()
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy names: {names}")
        self.clock = clock
        self.bucket_s = float(bucket_s)
        self.sketch_k = int(sketch_k)
        self.max_slices = int(max_slices)
        self.sketch = QuantileSketch(self.sketch_k)
        self._states = {p.name: _PolicyState(p) for p in self.policies}
        self._slices: dict[str, dict] = {}
        self._observers: list = []
        self._lock = threading.Lock()
        self.n_events = 0

    def add_observer(self, observer) -> None:
        """Register a ServingObserver for ``on_slo_alert`` callbacks."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    def _slice_state(self, key: str) -> dict:
        state = self._slices.get(key)
        if state is None:
            if len(self._slices) >= self.max_slices and key != "overflow":
                return self._slice_state("overflow")
            state = {
                "sketch": QuantileSketch(max(32, self.sketch_k // 4)),
                "n": 0,
                "bad": dict.fromkeys(self._states, 0),
                "errors": 0,
            }
            self._slices[key] = state
        return state

    def record_latency(
        self, seconds: float, *, error: bool = False, slices=(), check: bool = True
    ) -> list[SloAlert]:
        """Record one served event and re-evaluate every policy.

        ``seconds`` is the event latency; ``error=True`` marks the event
        bad for error-rate policies (its latency still feeds the
        sketches).  ``slices`` are scorecard keys
        (``imputer:<algorithm>``, ``cluster:<id>``) whose per-slice
        sketches and violation counts this event contributes to.
        Returns the alerts newly fired by this event (usually empty).
        Batch callers recording many events per request pass
        ``check=False`` and call :meth:`evaluate` once at the end.
        """
        seconds = float(seconds)
        now = float(self.clock())
        with self._lock:
            self.n_events += 1
            self.sketch.update(seconds)
            bad_by_policy = {}
            for name, state in self._states.items():
                policy = state.policy
                if policy.kind == "latency":
                    bad = seconds > policy.threshold
                else:
                    bad = bool(error)
                bad_by_policy[name] = bad
                state.record(now, self.bucket_s, bad)
            for key in slices:
                slice_state = self._slice_state(str(key))
                slice_state["sketch"].update(seconds)
                slice_state["n"] += 1
                if error:
                    slice_state["errors"] += 1
                for name, bad in bad_by_policy.items():
                    if bad:
                        slice_state["bad"][name] = (
                            slice_state["bad"].get(name, 0) + 1
                        )
        if not check:
            return []
        return self.evaluate(now=now)

    def record_error(self, seconds: float = 0.0, *, slices=()) -> list[SloAlert]:
        """Record one failed event (shorthand for ``error=True``)."""
        return self.record_latency(seconds, error=True, slices=slices)

    # ------------------------------------------------------------------
    def _policy_status(self, state: _PolicyState, now: float) -> dict:
        policy = state.policy
        fast_good, fast_bad = state.window_counts(now, policy.fast_window_s)
        slow_good, slow_bad = state.window_counts(now, policy.slow_window_s)
        fast_total = fast_good + fast_bad
        slow_total = slow_good + slow_bad
        fast_fraction = fast_bad / fast_total if fast_total else 0.0
        slow_fraction = slow_bad / slow_total if slow_total else 0.0
        fast_burn = fast_fraction / policy.budget
        slow_burn = slow_fraction / policy.budget
        return {
            "policy": policy.name,
            "kind": policy.kind,
            "objective": policy.describe(),
            "threshold_s": policy.threshold if policy.kind == "latency" else None,
            "budget": policy.budget,
            "fast_window_s": policy.fast_window_s,
            "slow_window_s": policy.slow_window_s,
            "fast_events": fast_total,
            "slow_events": slow_total,
            "fast_bad_fraction": fast_fraction,
            "slow_bad_fraction": slow_fraction,
            "fast_burn": fast_burn,
            "slow_burn": slow_burn,
            "budget_remaining": max(0.0, 1.0 - slow_fraction / policy.budget),
            "alerting": state.alert_active,
            "n_alerts": state.n_alerts,
        }

    def evaluate(self, *, now: float | None = None) -> list[SloAlert]:
        """Evaluate every policy; fire / re-arm burn-rate alerts.

        An alert fires when the fast AND slow windows both burn above
        their thresholds (with at least ``min_events`` in the fast
        window); it stays active until the fast window drops back under
        its threshold, after which the policy is re-armed and can fire
        again — the DriftDetector excursion semantics.
        """
        if now is None:
            now = float(self.clock())
        fired: list[SloAlert] = []
        metrics = get_metrics()
        with self._lock:
            for state in self._states.values():
                policy = state.policy
                status = self._policy_status(state, now)
                condition = (
                    status["fast_events"] >= policy.min_events
                    and status["fast_burn"] >= policy.fast_burn
                    and status["slow_burn"] >= policy.slow_burn
                )
                if condition and not state.alert_active:
                    state.alert_active = True
                    state.n_alerts += 1
                    alert = SloAlert(
                        policy=policy.name,
                        kind=policy.kind,
                        budget=policy.budget,
                        fast_burn=status["fast_burn"],
                        slow_burn=status["slow_burn"],
                        fast_threshold=policy.fast_burn,
                        slow_threshold=policy.slow_burn,
                        n_events=status["fast_events"],
                        message=(
                            f"SLO {policy.name} burning "
                            f"{status['fast_burn']:.1f}x budget over "
                            f"{policy.fast_window_s / 60:g}m "
                            f"({status['slow_burn']:.1f}x over "
                            f"{policy.slow_window_s / 60:g}m): "
                            f"{policy.describe()}"
                        ),
                    )
                    fired.append(alert)
                elif state.alert_active and (
                    status["fast_burn"] < policy.fast_burn
                ):
                    state.alert_active = False  # re-arm
                status["alerting"] = state.alert_active
                status["n_alerts"] = state.n_alerts
                state.last_status = status
        for alert in fired:
            metrics.counter(
                "repro_slo_alerts_total",
                "Burn-rate SLO alerts announced",
                labels={"policy": alert.policy},
            ).inc()
            _log.warning("%s", alert.message)
            for observer in self._observers:
                observer.on_slo_alert(alert)
        return fired

    # ------------------------------------------------------------------
    @property
    def n_alerts(self) -> int:
        """Total alerts fired across every policy."""
        with self._lock:
            return sum(state.n_alerts for state in self._states.values())

    def status(self) -> dict:
        """Health-document payload: sketch summary + per-policy statuses
        + per-slice scorecards."""
        now = float(self.clock())
        with self._lock:
            policies = [
                self._policy_status(state, now)
                for state in self._states.values()
            ]
            slices = {}
            for key in sorted(self._slices):
                state = self._slices[key]
                sketch = state["sketch"]
                slices[key] = {
                    "n": state["n"],
                    "errors": state["errors"],
                    "p50": sketch.quantile(0.5) if len(sketch) else 0.0,
                    "p99": sketch.quantile(0.99) if len(sketch) else 0.0,
                    "bad": dict(state["bad"]),
                }
            return {
                "n_events": self.n_events,
                "n_alerts": sum(s.n_alerts for s in self._states.values()),
                "latency_sketch": self.sketch.summary(),
                "policies": policies,
                "slices": slices,
            }
