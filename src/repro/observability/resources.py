"""Resource accounting: live byte gauges, kernel counters, RSS sampling.

PR 5/7 gave the hot path real memory consumers — the
:class:`~repro.timeseries.batch.SeriesBank` derived-array memo, the
:class:`~repro.parallel.cache.FeatureCache` / ``ScoreMemo`` stores and
the shared-memory segments of the process backend — but nothing
accounted for what they hold.  This module is the ledger of bytes:

* :class:`AccountingRegistry` — a process-wide registry of **accounts**
  (live byte gauges per component: ``series_bank``, ``feature_cache``,
  ``score_memo``, ``shared_memory``), **kernel counters** (bytes moved,
  blockwise chunk counts, scratch allocations per named kernel) and
  **backend decisions** (how often the executor resolved to
  serial/thread/process).
* :func:`sample_rss` — the OS view (``/proc/self/status`` VmRSS/VmHWM
  with a ``resource.getrusage`` fallback), plus a registry-tracked
  high-water mark so snapshots record the worst point, not just now.

Everything is O(1) dict arithmetic under one lock, cheap enough for the
block loops of ``ncc_cross``/``impute_many`` (which accumulate locally
and record once per call).  The registry feeds
:class:`~repro.observability.serving.HealthSnapshot` (JSON and
Prometheus) and stamps ledger "fit"/"repair" rows via
:func:`resource_stamp`, so every repair's provenance includes the memory
state it ran under.

Like the tracer/metrics/ledger singletons, accounting is process-global
(``get_accounting()``); tests call ``reset()`` between cases.
"""

from __future__ import annotations

import os
import threading


class _Account:
    """Live byte gauge of one component (plus lifetime totals)."""

    __slots__ = ("bytes", "items", "peak_bytes", "allocated_bytes", "allocations")

    def __init__(self):
        self.bytes = 0
        self.items = 0
        self.peak_bytes = 0
        self.allocated_bytes = 0
        self.allocations = 0

    def as_dict(self) -> dict:
        return {
            "bytes": int(self.bytes),
            "items": int(self.items),
            "peak_bytes": int(self.peak_bytes),
            "allocated_bytes": int(self.allocated_bytes),
            "allocations": int(self.allocations),
        }


class _Kernel:
    """Lifetime counters of one named kernel."""

    __slots__ = ("calls", "bytes_moved", "chunks", "scratch_allocations")

    def __init__(self):
        self.calls = 0
        self.bytes_moved = 0
        self.chunks = 0
        self.scratch_allocations = 0

    def as_dict(self) -> dict:
        return {
            "calls": int(self.calls),
            "bytes_moved": int(self.bytes_moved),
            "chunks": int(self.chunks),
            "scratch_allocations": int(self.scratch_allocations),
        }


def sample_rss() -> dict:
    """Current resident-set size of this process, in bytes.

    Reads ``/proc/self/status`` (Linux: VmRSS current, VmHWM high-water);
    falls back to ``resource.getrusage`` elsewhere.  Returns zeros when
    neither source is available — accounting must never break serving.
    """
    rss = hwm = 0
    try:
        with open("/proc/self/status", "r") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                elif line.startswith("VmHWM:"):
                    hwm = int(line.split()[1]) * 1024
    except OSError:
        pass
    if rss == 0:
        try:
            import resource as _resource

            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS.
            scale = 1 if os.uname().sysname == "Darwin" else 1024
            hwm = max(hwm, int(usage.ru_maxrss) * scale)
            rss = hwm
        except Exception:
            pass
    return {"rss_bytes": rss, "hwm_bytes": max(rss, hwm)}


class AccountingRegistry:
    """Process-wide resource ledger: accounts, kernels, backend decisions.

    All mutators are safe to call from worker threads; the per-call cost
    is a lock acquisition and a couple of integer adds.  Hot block loops
    should accumulate locally and call :meth:`record_kernel` once per
    public-API call, not once per chunk.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._accounts: dict[str, _Account] = {}
        self._kernels: dict[str, _Kernel] = {}
        self._backend_decisions: dict[str, int] = {}
        self._rss_hwm = 0

    # -- accounts -------------------------------------------------------
    def _account(self, name: str) -> _Account:
        account = self._accounts.get(name)
        if account is None:
            account = self._accounts.setdefault(name, _Account())
        return account

    def account_add(self, name: str, nbytes: int, *, items: int = 1) -> None:
        """A component took ownership of ``nbytes`` more live bytes."""
        nbytes = int(nbytes)
        with self._lock:
            account = self._account(name)
            account.bytes += nbytes
            account.items += items
            account.allocated_bytes += max(0, nbytes)
            account.allocations += 1
            if account.bytes > account.peak_bytes:
                account.peak_bytes = account.bytes

    def account_sub(self, name: str, nbytes: int, *, items: int = 1) -> None:
        """A component released ``nbytes`` live bytes."""
        with self._lock:
            account = self._account(name)
            account.bytes = max(0, account.bytes - int(nbytes))
            account.items = max(0, account.items - items)

    def account_clear(self, name: str) -> None:
        """A component dropped everything it held (cache ``clear()``)."""
        with self._lock:
            account = self._account(name)
            account.bytes = 0
            account.items = 0

    def account_bytes(self, name: str) -> int:
        """Current live bytes of one account (0 if never touched)."""
        with self._lock:
            account = self._accounts.get(name)
            return int(account.bytes) if account else 0

    # -- kernels --------------------------------------------------------
    def record_kernel(
        self,
        name: str,
        *,
        bytes_moved: int = 0,
        chunks: int = 0,
        scratch_allocations: int = 0,
        calls: int = 1,
    ) -> None:
        """Fold one kernel invocation's counters into the registry.

        ``bytes_moved`` is the kernel's working-set traffic (inputs
        touched + outputs written), ``chunks`` the number of blockwise
        iterations, ``scratch_allocations`` the temporary arrays it
        allocated.
        """
        with self._lock:
            kernel = self._kernels.get(name)
            if kernel is None:
                kernel = self._kernels.setdefault(name, _Kernel())
            kernel.calls += calls
            kernel.bytes_moved += int(bytes_moved)
            kernel.chunks += int(chunks)
            kernel.scratch_allocations += int(scratch_allocations)

    # -- backend decisions ---------------------------------------------
    def record_backend_decision(self, backend: str) -> None:
        """The executor resolved a batch to ``backend``."""
        with self._lock:
            self._backend_decisions[backend] = (
                self._backend_decisions.get(backend, 0) + 1
            )

    # -- process memory -------------------------------------------------
    def sample(self) -> dict:
        """Sample RSS now and fold it into the tracked high-water."""
        rss = sample_rss()
        with self._lock:
            if rss["hwm_bytes"] > self._rss_hwm:
                self._rss_hwm = rss["hwm_bytes"]
            rss["tracked_hwm_bytes"] = self._rss_hwm
        return rss

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Health-document payload: RSS + accounts + kernels + backends."""
        rss = self.sample()
        with self._lock:
            return {
                "process": rss,
                "accounts": {
                    name: account.as_dict()
                    for name, account in sorted(self._accounts.items())
                },
                "kernels": {
                    name: kernel.as_dict()
                    for name, kernel in sorted(self._kernels.items())
                },
                "backend_decisions": dict(
                    sorted(self._backend_decisions.items())
                ),
            }

    def reset(self) -> None:
        """Forget everything (tests; a fresh process view)."""
        with self._lock:
            self._accounts.clear()
            self._kernels.clear()
            self._backend_decisions.clear()
            self._rss_hwm = 0


#: Process-global registry, mirroring the tracer/metrics/ledger pattern.
_ACCOUNTING = AccountingRegistry()


def get_accounting() -> AccountingRegistry:
    """The process-wide :class:`AccountingRegistry`."""
    return _ACCOUNTING


def resource_stamp() -> dict:
    """Compact resource context for ledger "fit"/"repair" rows.

    Deliberately small — a handful of integers, not the full snapshot —
    because it is attached to every repair row.
    """
    registry = get_accounting()
    rss = registry.sample()
    return {
        "rss_bytes": rss["rss_bytes"],
        "rss_hwm_bytes": rss["tracked_hwm_bytes"],
        "series_bank_bytes": registry.account_bytes("series_bank"),
        "series_bank_disk_bytes": registry.account_bytes("series_bank_disk"),
        "feature_cache_bytes": registry.account_bytes("feature_cache"),
        "score_memo_bytes": registry.account_bytes("score_memo"),
        "shared_memory_bytes": registry.account_bytes("shared_memory"),
    }
