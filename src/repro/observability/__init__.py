"""repro.observability — tracing, metrics, race telemetry, and logging.

The instrumentation substrate for every performance claim in the repro:

* :mod:`repro.observability.tracing` — nested :class:`Span` context
  managers with JSON and Chrome ``trace_event`` export;
* :mod:`repro.observability.metrics` — counters, gauges, and
  numpy-backed histograms with JSON / Prometheus text export;
* :mod:`repro.observability.observer` — the :class:`RaceObserver`
  event-callback API that :class:`~repro.core.modelrace.ModelRace`
  emits into, plus the structured :class:`IterationRecord`;
* :mod:`repro.observability.log` — stdlib-``logging`` integration,
  silent by default;
* :mod:`repro.observability.report` — human-readable run summaries
  from saved trace/metrics files (the ``repro report`` subcommand);
* :mod:`repro.observability.serving` — inference-path telemetry:
  :class:`InferenceMonitor` rolling windows (latency, confidence,
  soft-vote disagreement, recommendation mix), :class:`DriftDetector`
  PSI/KS scoring against a fit-time :class:`FeatureBaseline`, and the
  aggregated :class:`HealthSnapshot` JSON/Prometheus health document
  (the ``repro monitor`` subcommand);
* :mod:`repro.observability.slo` — the SLO engine:
  :class:`QuantileSketch` mergeable streaming quantiles and
  :class:`SloTracker` multi-window burn-rate alerting over declarative
  :class:`SloPolicy` objectives, with per-imputer/per-cluster slices;
* :mod:`repro.observability.resources` — :class:`AccountingRegistry`
  process/resource accounting: RSS high-water, live component byte
  counts (series bank, caches, shared memory), and per-kernel counters
  (bytes moved, chunks, scratch allocations, backend decisions);
* :mod:`repro.observability.dashboard` — the ``repro top`` ANSI
  dashboard and the ``repro bench trend`` regression-delta table;
* :mod:`repro.observability.profiler` — :class:`SamplingProfiler`,
  a low-overhead thread/signal sampling profiler with collapsed-stack
  (flamegraph) output (the ``repro profile`` subcommand);
* :mod:`repro.observability.ledger` — the append-only, schema-versioned
  :class:`RepairLedger` recording per-fit and per-repair provenance
  (cluster assignment, vote confidences, race elites, imputer choice,
  post-repair quality stats), trace-correlated with spans and logs
  (the ``repro audit`` / ``repro explain`` subcommands).

Everything is zero-dependency, thread-safe, and free when disabled: the
module-level defaults are no-op singletons, so library code instruments
hot paths unconditionally and users pay only when they install a real
:class:`Tracer` / :class:`MetricsRegistry` via :func:`set_tracer`,
:func:`set_metrics`, or the scoped :class:`use_tracer` /
:class:`use_metrics` context managers.
"""

from repro.observability.dashboard import (
    bench_trend_rows,
    human_bytes,
    load_snapshot,
    render_bench_trend,
    render_top,
)
from repro.observability.ledger import (
    ClusterAtlas,
    NULL_LEDGER,
    NullLedger,
    RepairLedger,
    SCHEMA_VERSION as LEDGER_SCHEMA_VERSION,
    current_repair_id,
    explain_repair,
    filter_records,
    get_ledger,
    new_id,
    read_ledger,
    render_explanation,
    render_summary,
    repair_context,
    repair_quality_stats,
    repair_quality_stats_block,
    set_ledger,
    summarize_ledger,
    upgrade_record,
    use_ledger,
)
from repro.observability.log import (
    TraceContextFilter,
    disable_console_logging,
    enable_console_logging,
    get_logger,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    build_info,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.observability.observer import (
    CompositeObserver,
    IterationRecord,
    LoggingObserver,
    NULL_OBSERVER,
    RaceObserver,
    RecordingObserver,
    RecordingServingObserver,
    ServingObserver,
)
from repro.observability.profiler import (
    SamplingProfiler,
    parse_collapsed,
)
from repro.observability.resources import (
    AccountingRegistry,
    get_accounting,
    resource_stamp,
    sample_rss,
)
from repro.observability.serving import (
    DriftDetector,
    DriftReport,
    FeatureBaseline,
    HealthSnapshot,
    InferenceMonitor,
    RollingWindow,
)
from repro.observability.slo import (
    QuantileSketch,
    SloAlert,
    SloPolicy,
    SloTracker,
    default_policies,
)
from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "build_info",
    # observer
    "RaceObserver",
    "RecordingObserver",
    "CompositeObserver",
    "LoggingObserver",
    "IterationRecord",
    "NULL_OBSERVER",
    "ServingObserver",
    "RecordingServingObserver",
    # serving
    "DriftDetector",
    "DriftReport",
    "FeatureBaseline",
    "HealthSnapshot",
    "InferenceMonitor",
    "RollingWindow",
    # slo
    "QuantileSketch",
    "SloPolicy",
    "SloAlert",
    "SloTracker",
    "default_policies",
    # resources
    "AccountingRegistry",
    "get_accounting",
    "resource_stamp",
    "sample_rss",
    # dashboard
    "render_top",
    "render_bench_trend",
    "bench_trend_rows",
    "load_snapshot",
    "human_bytes",
    # profiler
    "SamplingProfiler",
    "parse_collapsed",
    # logging
    "get_logger",
    "enable_console_logging",
    "disable_console_logging",
    "TraceContextFilter",
    # ledger
    "RepairLedger",
    "NullLedger",
    "NULL_LEDGER",
    "LEDGER_SCHEMA_VERSION",
    "ClusterAtlas",
    "get_ledger",
    "set_ledger",
    "use_ledger",
    "new_id",
    "current_repair_id",
    "repair_context",
    "repair_quality_stats",
    "repair_quality_stats_block",
    "read_ledger",
    "upgrade_record",
    "filter_records",
    "summarize_ledger",
    "render_summary",
    "explain_repair",
    "render_explanation",
]
