"""Race event-callback API: structured per-iteration records + observers.

:class:`ModelRace <repro.core.modelrace.ModelRace>` emits the lifecycle of
Algorithm 1 into a :class:`RaceObserver`:

* ``on_race_start`` / ``on_race_end`` — the whole race;
* ``on_iteration_start`` / ``on_iteration_end`` — one partial-set round;
* ``on_candidate_scored`` — every (pipeline, fold) evaluation;
* ``on_early_termination`` — phase-1 pruning (fold-margin);
* ``on_ttest_prune`` — phase-2 pruning (Welch t-test redundancy);
* ``on_elite_refit`` — the final full-data refit of the survivors.

All methods default to no-ops, so subclasses override only what they
need.  :class:`IterationRecord` replaces the historical ad-hoc history
dicts; ``RaceResult.history`` keeps returning plain dicts for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class IterationRecord:
    """Structured per-iteration diagnostics of one ModelRace round.

    Attributes
    ----------
    iteration:
        0-based index of the partial-set round.
    subset_size:
        Number of training samples in this round's partial set.
    n_candidates:
        Candidate pipelines entering the round (elite + synthesized).
    n_folds:
        Stratified folds evaluated this round.
    n_evaluations:
        (pipeline, fold) evaluations actually executed.
    n_early_terminated:
        Candidates dropped by phase-1 pruning (fold-margin).
    n_ttest_pruned:
        Candidates dropped by phase-2 pruning (t-test redundancy).
    n_failures:
        Evaluations that raised inside fit/predict (scored ``-inf``).
    n_quarantined:
        Candidates quarantined by the race circuit breaker this round
        (repeated consecutive failures).
    n_elite:
        Survivors after both pruning phases.
    wall_time:
        Wall-clock seconds spent on this iteration.
    """

    iteration: int
    subset_size: int
    n_candidates: int
    n_folds: int = 0
    n_evaluations: int = 0
    n_early_terminated: int = 0
    n_ttest_pruned: int = 0
    n_failures: int = 0
    n_quarantined: int = 0
    n_elite: int = 0
    wall_time: float = 0.0

    @property
    def n_potential_evaluations(self) -> int:
        """Evaluations a pruning-free race would have run this round."""
        return self.n_candidates * self.n_folds

    def as_dict(self) -> dict:
        """Plain-dict view (the legacy ``RaceResult.history`` format)."""
        return asdict(self)

    # Legacy compatibility: history records used to be plain dicts, so
    # keep item access working on the dataclass too.
    def __getitem__(self, key: str):
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default=None):
        """Dict-style ``get`` for legacy consumers."""
        return getattr(self, key, default)


class RaceObserver:
    """Base observer: every callback is a no-op.

    Subclass and override the events you care about; ModelRace guarantees
    the call order documented in the module docstring.  Observers must not
    mutate their arguments — records are shared with ``RaceResult``.
    """

    def on_race_start(self, n_seeds: int, n_samples: int) -> None:
        """The race begins with ``n_seeds`` pipelines on ``n_samples``."""

    def on_iteration_start(
        self, iteration: int, subset_size: int, n_candidates: int
    ) -> None:
        """A partial-set round begins."""

    def on_candidate_scored(
        self, iteration: int, fold: int, config_key: tuple, score
    ) -> None:
        """One (pipeline, fold) evaluation finished.

        ``score`` is the full :class:`~repro.pipeline.scoring.PipelineScore`
        (including runtime and the optional ``error`` string).
        """

    def on_early_termination(
        self, iteration: int, fold: int, config_key: tuple
    ) -> None:
        """A candidate was dropped by phase-1 (fold-margin) pruning."""

    def on_quarantine(
        self, iteration: int, fold: int, config_key: tuple
    ) -> None:
        """The race circuit breaker quarantined a repeatedly failing
        candidate (it leaves the race like an early termination, but for
        reliability rather than score reasons)."""

    def on_ttest_prune(self, iteration: int, n_pruned: int) -> None:
        """Phase-2 (t-test) pruning removed ``n_pruned`` candidates."""

    def on_iteration_end(self, record: IterationRecord) -> None:
        """A round finished; ``record`` carries the full diagnostics."""

    def on_elite_refit(self, n_elite: int, n_fitted: int) -> None:
        """The final refit completed (``n_fitted`` of ``n_elite`` fit OK)."""

    def on_race_end(self, result) -> None:
        """The race finished; ``result`` is the full ``RaceResult``."""


#: Shared no-op observer used when none is supplied.
NULL_OBSERVER = RaceObserver()


class CompositeObserver(RaceObserver):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers):
        self.observers = list(observers)

    def on_race_start(self, n_seeds, n_samples):
        for obs in self.observers:
            obs.on_race_start(n_seeds, n_samples)

    def on_iteration_start(self, iteration, subset_size, n_candidates):
        for obs in self.observers:
            obs.on_iteration_start(iteration, subset_size, n_candidates)

    def on_candidate_scored(self, iteration, fold, config_key, score):
        for obs in self.observers:
            obs.on_candidate_scored(iteration, fold, config_key, score)

    def on_early_termination(self, iteration, fold, config_key):
        for obs in self.observers:
            obs.on_early_termination(iteration, fold, config_key)

    def on_quarantine(self, iteration, fold, config_key):
        for obs in self.observers:
            obs.on_quarantine(iteration, fold, config_key)

    def on_ttest_prune(self, iteration, n_pruned):
        for obs in self.observers:
            obs.on_ttest_prune(iteration, n_pruned)

    def on_iteration_end(self, record):
        for obs in self.observers:
            obs.on_iteration_end(record)

    def on_elite_refit(self, n_elite, n_fitted):
        for obs in self.observers:
            obs.on_elite_refit(n_elite, n_fitted)

    def on_race_end(self, result):
        for obs in self.observers:
            obs.on_race_end(result)


@dataclass
class RecordingObserver(RaceObserver):
    """Records every event as ``(event_name, payload)`` tuples (tests/debug)."""

    events: list = field(default_factory=list)

    def _push(self, name: str, **payload) -> None:
        self.events.append((name, payload))

    def of_type(self, name: str) -> list:
        """Payloads of every recorded event called ``name``."""
        return [payload for event, payload in self.events if event == name]

    def on_race_start(self, n_seeds, n_samples):
        self._push("race_start", n_seeds=n_seeds, n_samples=n_samples)

    def on_iteration_start(self, iteration, subset_size, n_candidates):
        self._push(
            "iteration_start",
            iteration=iteration,
            subset_size=subset_size,
            n_candidates=n_candidates,
        )

    def on_candidate_scored(self, iteration, fold, config_key, score):
        self._push(
            "candidate_scored",
            iteration=iteration,
            fold=fold,
            config_key=config_key,
            score=score,
        )

    def on_early_termination(self, iteration, fold, config_key):
        self._push(
            "early_termination",
            iteration=iteration,
            fold=fold,
            config_key=config_key,
        )

    def on_quarantine(self, iteration, fold, config_key):
        self._push(
            "quarantine",
            iteration=iteration,
            fold=fold,
            config_key=config_key,
        )

    def on_ttest_prune(self, iteration, n_pruned):
        self._push("ttest_prune", iteration=iteration, n_pruned=n_pruned)

    def on_iteration_end(self, record):
        self._push("iteration_end", record=record)

    def on_elite_refit(self, n_elite, n_fitted):
        self._push("elite_refit", n_elite=n_elite, n_fitted=n_fitted)

    def on_race_end(self, result):
        self._push("race_end", result=result)


class ServingObserver:
    """Event-callback API for the serving path (the inference-side bus).

    :class:`~repro.observability.serving.InferenceMonitor` and
    :class:`~repro.observability.serving.DriftDetector` emit into this
    interface, mirroring how ModelRace emits into :class:`RaceObserver`.
    Every callback is a no-op; subclass and override what you need.
    """

    def on_request(self, n_series: int, latency: float, recommendations) -> None:
        """A monitored recommend/recommend_many call finished."""

    def on_drift_alert(self, report) -> None:
        """The drift detector crossed a threshold (``report`` is a
        :class:`~repro.observability.serving.DriftReport`)."""

    def on_degraded(self, n_series: int, detail) -> None:
        """A request was served in degraded mode (ensemble members were
        dropped, or the static fallback answered).  ``detail`` is the
        :class:`~repro.core.voting.VoteDetail` of the vote, or ``None``
        when the fallback path produced the recommendations."""

    def on_member_quarantined(self, member: str) -> None:
        """The serving ensemble's circuit breaker quarantined a member
        pipeline (identified by its display name)."""

    def on_slo_alert(self, alert) -> None:
        """An SLO burn-rate alert fired (``alert`` is an
        :class:`~repro.observability.slo.SloAlert`).  Like drift alerts
        it fires once per excursion and re-arms on recovery."""


@dataclass
class RecordingServingObserver(ServingObserver):
    """Records serving events as ``(event_name, payload)`` tuples."""

    events: list = field(default_factory=list)

    def of_type(self, name: str) -> list:
        """Payloads of every recorded event called ``name``."""
        return [payload for event, payload in self.events if event == name]

    def on_request(self, n_series, latency, recommendations):
        self.events.append(
            (
                "request",
                {
                    "n_series": n_series,
                    "latency": latency,
                    "recommendations": recommendations,
                },
            )
        )

    def on_drift_alert(self, report):
        self.events.append(("drift_alert", {"report": report}))

    def on_degraded(self, n_series, detail):
        self.events.append(
            ("degraded", {"n_series": n_series, "detail": detail})
        )

    def on_member_quarantined(self, member):
        self.events.append(("member_quarantined", {"member": member}))

    def on_slo_alert(self, alert):
        self.events.append(("slo_alert", {"alert": alert}))


class LoggingObserver(RaceObserver):
    """Narrates race progress through the ``repro`` logger hierarchy."""

    def __init__(self, logger=None):
        from repro.observability.log import get_logger

        self.logger = logger or get_logger("observability.race")

    def on_race_start(self, n_seeds, n_samples):
        self.logger.info(
            "race start: %d seed pipelines, %d samples", n_seeds, n_samples
        )

    def on_iteration_start(self, iteration, subset_size, n_candidates):
        self.logger.info(
            "iteration %d: subset=%d candidates=%d",
            iteration,
            subset_size,
            n_candidates,
        )

    def on_early_termination(self, iteration, fold, config_key):
        self.logger.debug(
            "iteration %d fold %d: early-terminated %s",
            iteration,
            fold,
            config_key,
        )

    def on_quarantine(self, iteration, fold, config_key):
        self.logger.warning(
            "iteration %d fold %d: quarantined %s (repeated failures)",
            iteration,
            fold,
            config_key,
        )

    def on_ttest_prune(self, iteration, n_pruned):
        if n_pruned:
            self.logger.info(
                "iteration %d: t-test pruned %d", iteration, n_pruned
            )

    def on_iteration_end(self, record):
        self.logger.info(
            "iteration %d done: evals=%d early=%d pruned=%d elite=%d "
            "(%.3fs)",
            record.iteration,
            record.n_evaluations,
            record.n_early_terminated,
            record.n_ttest_pruned,
            record.n_elite,
            record.wall_time,
        )

    def on_elite_refit(self, n_elite, n_fitted):
        self.logger.info("elite refit: %d/%d fitted", n_fitted, n_elite)
