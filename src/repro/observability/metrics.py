"""Metrics registry: counters, gauges, and numpy-backed histograms.

Zero-dependency (numpy is already a core dependency) and thread-safe.
Like tracing, the module-level default is a :class:`NullMetricsRegistry`
whose instruments are shared no-op singletons, so instrumented library
code pays nothing until a real :class:`MetricsRegistry` is installed via
:func:`set_metrics` / :class:`use_metrics`.

Export formats:

* :meth:`MetricsRegistry.to_json` — nested JSON document;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (counters/gauges as-is, histograms as ``summary`` quantiles by
  default, or native ``histogram`` ``_bucket``/``_sum``/``_count``
  series when ``native_histograms`` is enabled).

Long-running serving safety: each metric name may hold at most
``max_label_sets`` distinct label combinations (default 64).  Once the
cap is hit, further label sets are folded into a single
``{overflow="true"}`` instrument and a warning is logged once per
metric — a per-series or per-request label can therefore never grow the
registry without bound.
"""

from __future__ import annotations

import json
import pathlib
import threading

import numpy as np

_LabelKey = tuple[tuple[str, str], ...]

#: Label set absorbing new label combinations once a metric hits its
#: cardinality cap (see ``MetricsRegistry(max_label_sets=...)``).
OVERFLOW_LABELS: _LabelKey = (("overflow", "true"),)


def _label_key(labels: dict | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    The spec requires ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and newline ->
    ``\\n`` inside quoted label values; anything else is passed through.
    Backslash must be escaped first or it would re-escape the others.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


def _get_module_logger():
    """Lazy logger lookup (avoids an import cycle at package init)."""
    from repro.observability.log import get_logger

    return get_logger(__name__)


_BUILD_INFO: dict | None = None


def build_info(*, refresh: bool = False) -> dict:
    """Build identity of this process: package version + git sha.

    Values fall back to ``"unknown"`` rather than raising — build
    identity must never break an export path.  Resolution order: the
    package's ``__version__`` (then installed distribution metadata) for
    the version; the ``REPRO_BUILD_SHA`` environment variable (CI sets
    it from the checkout) then ``git rev-parse`` for the sha.  Cached
    after the first call; ``refresh=True`` re-resolves.
    """
    global _BUILD_INFO
    if _BUILD_INFO is not None and not refresh:
        return dict(_BUILD_INFO)
    version = "unknown"
    try:
        import repro as _repro

        version = str(getattr(_repro, "__version__", "unknown"))
    except Exception:
        pass
    if version == "unknown":
        try:
            import importlib.metadata as _md

            version = _md.version("repro")
        except Exception:
            pass
    import os as _os

    sha = _os.environ.get("REPRO_BUILD_SHA", "").strip() or "unknown"
    if sha == "unknown":
        try:
            import pathlib as _pathlib
            import subprocess as _subprocess

            here = _pathlib.Path(__file__).resolve().parent
            out = _subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=here,
                capture_output=True,
                text=True,
                timeout=5,
            )
            if out.returncode == 0 and out.stdout.strip():
                sha = out.stdout.strip()
        except Exception:
            pass
    _BUILD_INFO = {"version": version, "git_sha": sha}
    return dict(_BUILD_INFO)


def render_build_info_lines(seen_names=()) -> list[str]:
    """The ``repro_build_info`` exposition lines (empty if already emitted).

    Shared by every Prometheus export path so scrape targets can always
    join series on the build identity.  ``seen_names`` suppresses the
    block when the caller's registry already carries the metric.
    """
    if "repro_build_info" in seen_names:
        return []
    info = build_info()
    labels = _render_labels(_label_key(info))
    return [
        "# HELP repro_build_info Build identity of the exporting process",
        "# TYPE repro_build_info gauge",
        f"repro_build_info{labels} 1",
    ]


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus metric name."""
    out = [c if (c.isalnum() or c in "_:") else "_" for c in str(name)]
    if not out or out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Instantaneous value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Observation store with numpy-computed percentile summaries.

    Keeps raw observations (float64, amortized-growth buffer) so the
    p50/p95/p99 summaries are exact rather than bucket-approximated — the
    right trade-off at reproduction scale where a run records thousands,
    not billions, of samples.
    """

    kind = "histogram"

    #: Quantiles exported by :meth:`summary` / Prometheus text format.
    QUANTILES = (0.5, 0.95, 0.99)

    #: Default ``le`` bucket ladder for native Prometheus exposition
    #: (latency-oriented: 1 ms .. 30 s).
    DEFAULT_BUCKETS = (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    )

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._buffer = np.empty(64, dtype=float)
        self._n = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are dropped)."""
        value = float(value)
        if not np.isfinite(value):
            return
        with self._lock:
            if self._n == len(self._buffer):
                self._buffer = np.concatenate(
                    [self._buffer, np.empty(len(self._buffer), dtype=float)]
                )
            self._buffer[self._n] = value
            self._n += 1

    def time(self):
        """Context manager observing the elapsed wall seconds of a block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        return self._n

    def values(self) -> np.ndarray:
        """Copy of the recorded observations."""
        with self._lock:
            return self._buffer[: self._n].copy()

    def summary(self) -> dict:
        """count / sum / mean / min / max / p50 / p95 / p99."""
        data = self.values()
        if data.size == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        quantiles = np.percentile(data, [100 * q for q in self.QUANTILES])
        return {
            "count": int(data.size),
            "sum": float(data.sum()),
            "mean": float(data.mean()),
            "min": float(data.min()),
            "max": float(data.max()),
            "p50": float(quantiles[0]),
            "p95": float(quantiles[1]),
            "p99": float(quantiles[2]),
        }

    def bucket_counts(self, buckets=None) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs for native Prometheus buckets.

        Exact (computed from the raw observations), monotonically
        non-decreasing, and always ending with ``(inf, count)``.
        """
        edges = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        data = np.sort(self.values())
        out = [
            (float(le), int(np.searchsorted(data, le, side="right")))
            for le in edges
        ]
        out.append((float("inf"), int(data.size)))
        return out

    def as_dict(self) -> dict:
        return {"type": self.kind, **self.summary()}


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self):
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import time

        self._histogram.observe(time.perf_counter() - self._start)
        return False


# ---------------------------------------------------------------------------
# No-op instruments (module-wide singletons)
# ---------------------------------------------------------------------------
class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    kind = "null"
    name = "null"
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self):
        return _NULL_TIMER

    def values(self):
        return np.empty(0)

    def summary(self) -> dict:
        return {}

    def as_dict(self) -> dict:
        return {}


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()
NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Default registry: every instrument is the shared no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "", labels: dict | None = None):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: dict | None = None):
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labels: dict | None = None):
        return NULL_INSTRUMENT

    def as_dict(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """Get-or-create registry of named (and optionally labeled) instruments.

    Instruments are keyed by ``(name, sorted(labels))``; requesting an
    existing name with a different instrument type raises ``ValueError``.

    Parameters
    ----------
    max_label_sets:
        Cardinality cap: maximum distinct label combinations per metric
        name.  New combinations beyond the cap share one
        ``{overflow="true"}`` instrument (warned once per metric), so an
        unbounded label (series name, request id) cannot blow up a
        long-running registry.
    native_histograms:
        When true, :meth:`to_prometheus` exports histograms in the
        native ``histogram`` exposition (``_bucket``/``_sum``/``_count``
        with ``le`` labels) instead of the default ``summary``
        quantiles.
    """

    enabled = True

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(
        self,
        *,
        max_label_sets: int = 64,
        native_histograms: bool = False,
    ):
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = int(max_label_sets)
        self.native_histograms = bool(native_histograms)
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, _LabelKey], object] = {}
        self._kinds: dict[str, str] = {}
        self._helps: dict[str, str] = {}
        self._label_counts: dict[str, int] = {}
        self._overflowed: set[str] = set()

    def _get_or_create(
        self, kind: str, name: str, help: str, labels: dict | None
    ):
        name = sanitize_metric_name(name)
        label_key = _label_key(labels)
        key = (name, label_key)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"requested {kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                if (
                    label_key
                    and label_key != OVERFLOW_LABELS
                    and self._label_counts.get(name, 0) >= self.max_label_sets
                ):
                    # Cardinality cap: fold this new combination into the
                    # shared overflow instrument instead of registering it.
                    if name not in self._overflowed:
                        self._overflowed.add(name)
                        _get_module_logger().warning(
                            "metric %s exceeded %d label sets; folding new "
                            "label combinations into %s",
                            name,
                            self.max_label_sets,
                            _render_labels(OVERFLOW_LABELS),
                        )
                    key = (name, OVERFLOW_LABELS)
                    instrument = self._instruments.get(key)
                    if instrument is not None:
                        return instrument
                instrument = self._KINDS[kind](name, help)
                self._instruments[key] = instrument
                self._kinds[name] = kind
                if key[1] and key[1] != OVERFLOW_LABELS:
                    self._label_counts[name] = (
                        self._label_counts.get(name, 0) + 1
                    )
                if help:
                    self._helps[name] = help
            return instrument

    def overflowed_metrics(self) -> set[str]:
        """Names whose label cardinality hit the cap at least once."""
        with self._lock:
            return set(self._overflowed)

    def counter(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create("counter", name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create("histogram", name, help, labels)

    def clear(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._helps.clear()
            self._label_counts.clear()
            self._overflowed.clear()

    # -- export ----------------------------------------------------------
    def _snapshot(self) -> list[tuple[str, _LabelKey, object]]:
        with self._lock:
            return [
                (name, labels, inst)
                for (name, labels), inst in sorted(self._instruments.items())
            ]

    def as_dict(self) -> dict:
        """Nested JSON-friendly dump: ``{name: {labels_repr: payload}}``."""
        out: dict = {}
        for name, labels, inst in self._snapshot():
            out.setdefault(name, {})[_render_labels(labels) or "_"] = (
                inst.as_dict()
            )
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_prometheus(self, native_histograms: bool | None = None) -> str:
        """Render the Prometheus text exposition format.

        ``native_histograms`` overrides the registry-level flag for this
        render only: ``True`` exports histograms as native ``histogram``
        series (cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``),
        ``False``/default keeps the historical ``summary`` quantiles.
        """
        if native_histograms is None:
            native_histograms = self.native_histograms
        lines: list[str] = []
        seen_header: set[str] = set()
        for name, labels, inst in self._snapshot():
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._helps.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                if inst.kind == "histogram":
                    prom_type = (
                        "histogram" if native_histograms else "summary"
                    )
                else:
                    prom_type = inst.kind
                lines.append(f"# TYPE {name} {prom_type}")
            rendered = _render_labels(labels)
            if inst.kind == "histogram":
                summary = inst.summary()
                if native_histograms:
                    for le, count in inst.bucket_counts():
                        le_text = "+Inf" if le == float("inf") else repr(le)
                        b_labels = _render_labels(
                            labels + (("le", le_text),)
                        )
                        lines.append(f"{name}_bucket{b_labels} {count}")
                else:
                    for quantile in Histogram.QUANTILES:
                        q_labels = _render_labels(
                            labels + (("quantile", str(quantile)),)
                        )
                        pct = int(round(quantile * 100))
                        lines.append(f"{name}{q_labels} {summary[f'p{pct}']}")
                lines.append(f"{name}_sum{rendered} {summary['sum']}")
                lines.append(f"{name}_count{rendered} {summary['count']}")
            else:
                lines.append(f"{name}{rendered} {inst.value}")
        lines.extend(render_build_info_lines(seen_header))
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, path) -> pathlib.Path:
        """Write metrics to ``path``; ``.prom``/``.txt`` selects text format."""
        path = pathlib.Path(path)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.to_prometheus())
        else:
            path.write_text(self.to_json())
        return path


# ---------------------------------------------------------------------------
# Module-level default registry (a no-op unless explicitly installed).
# ---------------------------------------------------------------------------
_default_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The currently installed registry (a shared no-op by default)."""
    return _default_metrics


def set_metrics(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``registry`` as the process-wide default; ``None`` resets."""
    global _default_metrics
    with _default_lock:
        _default_metrics = registry if registry is not None else NULL_METRICS
    return _default_metrics


class use_metrics:
    """Context manager installing a registry for the duration of a block."""

    def __init__(self, registry: MetricsRegistry | None):
        self.registry = registry
        self._previous: MetricsRegistry | NullMetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry | NullMetricsRegistry:
        self._previous = get_metrics()
        return set_metrics(self.registry)

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_metrics(
            self._previous
            if isinstance(self._previous, MetricsRegistry)
            else None
        )
        return False
