"""Serving-side quality observability: monitors, drift, and health docs.

The training path is instrumented (tracing/metrics/race events); this
module watches the *inference* path that production traffic actually
hits.  Four cooperating pieces:

* :class:`RollingWindow` — fixed-capacity ring buffer of float
  observations with exact quantile summaries; the storage behind every
  per-request statistic.
* :class:`FeatureBaseline` — a fingerprint of the training feature
  matrix captured at fit time (per-feature mean/std, quantile sketch,
  expected bucket proportions).  JSON-serializable, persisted alongside
  the engine by :mod:`repro.core.serialization`.
* :class:`DriftDetector` — scores incoming feature vectors against a
  :class:`FeatureBaseline` with PSI (population stability index) and a
  two-sample KS statistic per feature, raising threshold-crossing
  :class:`DriftReport` events through
  :class:`~repro.observability.observer.ServingObserver` callbacks and a
  ``repro_drift_alerts_total`` counter.
* :class:`InferenceMonitor` — wraps a fitted
  :class:`~repro.core.adarts.ADarts` engine; every ``recommend`` /
  ``recommend_many`` records latency, ensemble top-1 confidence,
  soft-vote disagreement (Jensen-Shannon-style entropy gap across member
  probabilities), the per-algorithm recommendation mix, and feeds the
  drift detector.
* :class:`HealthSnapshot` — one JSON / Prometheus document aggregating
  the monitor windows, drift scores, cache hit rates
  (:class:`~repro.parallel.FeatureCache` / ``ScoreMemo``), and execution
  engine backend stats.  Surfaced by ``python -m repro monitor``.

Everything here follows the substrate's rules: zero extra dependencies,
thread-safe, and free when unused — a monitor is opt-in, and library
code never imports this module on the hot path.
"""

from __future__ import annotations

import datetime as _dt
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.observability.log import get_logger
from repro.observability.metrics import MetricsRegistry, build_info, get_metrics
from repro.observability.observer import ServingObserver
from repro.observability.resources import get_accounting
from repro.observability.slo import QuantileSketch, SloTracker
from repro.observability.tracing import get_tracer

_log = get_logger(__name__)

_EPS = 1e-4


# ---------------------------------------------------------------------------
# Rolling windows
# ---------------------------------------------------------------------------
class RollingWindow:
    """Thread-safe ring buffer of the last ``capacity`` float observations.

    Unlike :class:`~repro.observability.metrics.Histogram` (which keeps
    every observation for run-level summaries), a window forgets: serving
    statistics must reflect *recent* traffic, not the whole process
    lifetime.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer = np.zeros(self.capacity, dtype=float)
        self._n = 0  # filled slots (<= capacity)
        self._head = 0  # next write position
        self._total = 0  # lifetime observation count
        self._lock = threading.Lock()

    def push(self, value: float) -> None:
        value = float(value)
        if not np.isfinite(value):
            return
        with self._lock:
            self._buffer[self._head] = value
            self._head = (self._head + 1) % self.capacity
            self._n = min(self._n + 1, self.capacity)
            self._total += 1

    def extend(self, values) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.push(value)

    def __len__(self) -> int:
        with self._lock:
            return self._n

    @property
    def total(self) -> int:
        """Lifetime number of observations pushed (not capped)."""
        with self._lock:
            return self._total

    def values(self) -> np.ndarray:
        """Copy of the window contents, oldest first."""
        with self._lock:
            if self._n < self.capacity:
                return self._buffer[: self._n].copy()
            return np.concatenate(
                [self._buffer[self._head:], self._buffer[: self._head]]
            )

    def summary(self) -> dict:
        """count/mean/min/max/p50/p95/p99 over the current window."""
        data = self.values()
        if data.size == 0:
            return {
                "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        p50, p95, p99 = np.percentile(data, [50, 95, 99])
        return {
            "count": int(data.size),
            "mean": float(data.mean()),
            "min": float(data.min()),
            "max": float(data.max()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
        }


# ---------------------------------------------------------------------------
# Feature baseline + drift scoring
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FeatureBaseline:
    """Distributional fingerprint of a training feature matrix.

    Captured once at fit time (see ``ADarts.fit_features``) and compared
    against serving traffic forever after.  Stores, per feature:

    * ``mean`` / ``std`` — first moments, for cheap z-score checks;
    * ``sketch_values`` — feature values at ``sketch_probs`` quantiles
      (the ECDF sketch the KS statistic is computed against);
    * ``edges`` — interior bucket edges (``n_bins - 1`` per feature);
    * ``expected`` — the baseline's own bucket occupancy, computed by
      re-binning the training matrix (robust to ties and constant
      features, unlike assuming uniform ``1/n_bins``).
    """

    feature_names: tuple[str, ...]
    n_samples: int
    mean: np.ndarray  # (d,)
    std: np.ndarray  # (d,)
    sketch_probs: np.ndarray  # (s,)
    sketch_values: np.ndarray  # (d, s)
    edges: np.ndarray  # (d, n_bins - 1)
    expected: np.ndarray  # (d, n_bins)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def n_bins(self) -> int:
        return self.expected.shape[1]

    @classmethod
    def from_matrix(
        cls,
        X: np.ndarray,
        feature_names=None,
        *,
        n_bins: int = 10,
        n_sketch: int = 21,
    ) -> "FeatureBaseline":
        """Fingerprint ``X`` (n_samples, n_features)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ValueError("baseline needs a 2-D matrix with >= 2 rows")
        d = X.shape[1]
        if feature_names is None or len(feature_names) != d:
            feature_names = tuple(f"f{i}" for i in range(d))
        else:
            feature_names = tuple(str(n) for n in feature_names)
        finite = np.nan_to_num(X, nan=0.0, posinf=0.0, neginf=0.0)
        sketch_probs = np.linspace(0.0, 1.0, int(n_sketch))
        sketch_values = np.percentile(
            finite, 100 * sketch_probs, axis=0
        ).T  # (d, s)
        interior = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        edges = np.percentile(finite, 100 * interior, axis=0).T  # (d, n_bins-1)
        expected = np.empty((d, n_bins), dtype=float)
        for j in range(d):
            expected[j] = _bucket_proportions(finite[:, j], edges[j])
        return cls(
            feature_names=feature_names,
            n_samples=int(X.shape[0]),
            mean=finite.mean(axis=0),
            std=finite.std(axis=0),
            sketch_probs=sketch_probs,
            sketch_values=sketch_values,
            edges=edges,
            expected=expected,
        )

    # -- persistence -----------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "feature_names": list(self.feature_names),
            "n_samples": self.n_samples,
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
            "sketch_probs": self.sketch_probs.tolist(),
            "sketch_values": self.sketch_values.tolist(),
            "edges": self.edges.tolist(),
            "expected": self.expected.tolist(),
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FeatureBaseline":
        return cls(
            feature_names=tuple(document["feature_names"]),
            n_samples=int(document["n_samples"]),
            mean=np.asarray(document["mean"], dtype=float),
            std=np.asarray(document["std"], dtype=float),
            sketch_probs=np.asarray(document["sketch_probs"], dtype=float),
            sketch_values=np.asarray(document["sketch_values"], dtype=float),
            edges=np.asarray(document["edges"], dtype=float),
            expected=np.asarray(document["expected"], dtype=float),
        )


def _bucket_proportions(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Occupancy fraction of the ``len(edges) + 1`` buckets cut by ``edges``."""
    idx = np.searchsorted(edges, values, side="right")
    counts = np.bincount(idx, minlength=len(edges) + 1).astype(float)
    total = counts.sum()
    return counts / total if total else counts


def psi_statistic(
    expected: np.ndarray, actual: np.ndarray, *, floor: float = _EPS
) -> float:
    """Population stability index between two bucket-proportion vectors.

    Conventional reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25
    significant shift.  Proportions are clamped at ``floor`` (default
    ``1e-4``) so empty buckets do not produce infinities; callers
    comparing small samples should raise the floor toward ``0.5/n`` —
    with a tiny floor, a single sampling-noise empty bucket contributes
    ``~0.1 * ln(1e3)`` PSI on its own.
    """
    e = np.clip(np.asarray(expected, dtype=float), max(_EPS, floor), None)
    a = np.clip(np.asarray(actual, dtype=float), max(_EPS, floor), None)
    e = e / e.sum()
    a = a / a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup ECDF distance)."""
    a = np.sort(np.asarray(sample_a, dtype=float).ravel())
    b = np.sort(np.asarray(sample_b, dtype=float).ravel())
    if a.size == 0 or b.size == 0:
        return 0.0
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclass
class DriftReport:
    """Per-feature and aggregate drift scores for one detector window."""

    n_samples: int
    psi: dict[str, float]
    ks: dict[str, float]
    psi_threshold: float
    ks_threshold: float

    @property
    def max_psi(self) -> float:
        return max(self.psi.values()) if self.psi else 0.0

    @property
    def max_ks(self) -> float:
        return max(self.ks.values()) if self.ks else 0.0

    @property
    def worst_feature(self) -> str | None:
        """Feature with the highest PSI (ties broken by name order)."""
        if not self.psi:
            return None
        return max(sorted(self.psi), key=lambda name: self.psi[name])

    @property
    def triggered(self) -> bool:
        """Whether either aggregate statistic crossed its threshold."""
        return (
            self.max_psi > self.psi_threshold or self.max_ks > self.ks_threshold
        )

    def as_dict(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "max_psi": self.max_psi,
            "max_ks": self.max_ks,
            "psi_threshold": self.psi_threshold,
            "ks_threshold": self.ks_threshold,
            "triggered": self.triggered,
            "worst_feature": self.worst_feature,
            "psi": dict(self.psi),
            "ks": dict(self.ks),
        }


class DriftDetector:
    """Scores serving feature vectors against a :class:`FeatureBaseline`.

    Incoming vectors accumulate in per-feature rolling windows; once
    ``min_samples`` have been seen, every :meth:`update` also produces a
    :class:`DriftReport`.  A report whose PSI or KS maximum crosses its
    threshold is announced once per excursion (re-arming when the scores
    fall back under the thresholds) through the registered
    :class:`~repro.observability.observer.ServingObserver` s and the
    ``repro_drift_alerts_total`` counter.

    Parameters
    ----------
    baseline:
        The training-time fingerprint to compare against.
    window_size:
        How many recent vectors the drift window holds.
    min_samples:
        Observations required before scoring starts (short windows make
        PSI noisy).
    psi_threshold / ks_threshold:
        Alert thresholds for the per-feature maxima.  The PSI default
        (0.25) is the conventional "significant shift" cut; the KS
        default is generous because the baseline side is a quantile
        sketch, not the raw sample.
    """

    def __init__(
        self,
        baseline: FeatureBaseline,
        *,
        window_size: int = 256,
        min_samples: int = 64,
        psi_threshold: float = 0.25,
        ks_threshold: float = 0.5,
    ):
        self.baseline = baseline
        self.window_size = int(window_size)
        self.min_samples = max(2, int(min_samples))
        self.psi_threshold = float(psi_threshold)
        self.ks_threshold = float(ks_threshold)
        self._window = np.zeros((self.window_size, baseline.n_features))
        self._head = 0
        self._n = 0
        self._total = 0
        self._lock = threading.Lock()
        self._observers: list[ServingObserver] = []
        self._alert_active = False
        self.n_alerts = 0
        self.last_report: DriftReport | None = None

    def add_observer(self, observer: ServingObserver) -> None:
        """Register an observer for ``on_drift_alert`` callbacks."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    def update(self, X: np.ndarray) -> DriftReport | None:
        """Ingest feature rows; returns a report once warmed up."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.baseline.n_features:
            raise ValueError(
                f"expected {self.baseline.n_features} features, got {X.shape[1]}"
            )
        with self._lock:
            for row in np.nan_to_num(X, nan=0.0, posinf=0.0, neginf=0.0):
                self._window[self._head] = row
                self._head = (self._head + 1) % self.window_size
                self._n = min(self._n + 1, self.window_size)
                self._total += 1
        if self._n < self.min_samples:
            return None
        return self.check()

    def window_matrix(self) -> np.ndarray:
        """Copy of the current drift window (n_recent, n_features)."""
        with self._lock:
            if self._n < self.window_size:
                return self._window[: self._n].copy()
            return np.concatenate(
                [self._window[self._head:], self._window[: self._head]]
            )

    def check(self) -> DriftReport:
        """Score the current window and fire alerts on threshold crossing."""
        window = self.window_matrix()
        baseline = self.baseline
        psi: dict[str, float] = {}
        ks: dict[str, float] = {}
        # Sample-aware smoothing: an empty bucket in a small window is
        # sampling noise, not evidence of drift.
        floor = max(_EPS, 0.5 / max(1, window.shape[0]))
        for j, name in enumerate(baseline.feature_names):
            column = window[:, j]
            actual = _bucket_proportions(column, baseline.edges[j])
            psi[name] = psi_statistic(
                baseline.expected[j], actual, floor=floor
            )
            ks[name] = ks_statistic(column, baseline.sketch_values[j])
        report = DriftReport(
            n_samples=int(window.shape[0]),
            psi=psi,
            ks=ks,
            psi_threshold=self.psi_threshold,
            ks_threshold=self.ks_threshold,
        )
        self.last_report = report
        metrics = get_metrics()
        metrics.gauge(
            "repro_drift_psi_max", "Max per-feature PSI over the drift window"
        ).set(report.max_psi)
        metrics.gauge(
            "repro_drift_ks_max", "Max per-feature KS over the drift window"
        ).set(report.max_ks)
        # Alert state transitions happen under the lock so concurrent
        # ``check()`` calls (the serving daemon's dispatcher + a health
        # poller) announce each excursion exactly once; the side effects
        # (counter, log, observers) run outside it.
        fire = False
        with self._lock:
            if report.triggered:
                fire = not self._alert_active
                self._alert_active = True
                if fire:
                    self.n_alerts += 1
            else:
                self._alert_active = False
        if fire:
            metrics.counter(
                "repro_drift_alerts_total",
                "Drift threshold crossings announced",
            ).inc()
            _log.warning(
                "feature drift detected: max PSI %.3f (>%g) / max KS %.3f "
                "(worst feature %s, window %d)",
                report.max_psi,
                self.psi_threshold,
                report.max_ks,
                report.worst_feature,
                report.n_samples,
            )
            for observer in self._observers:
                observer.on_drift_alert(report)
        return report


# ---------------------------------------------------------------------------
# Inference monitor
# ---------------------------------------------------------------------------
def vote_entropy(proba: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each probability row."""
    p = np.clip(np.atleast_2d(np.asarray(proba, dtype=float)), _EPS, None)
    p = p / p.sum(axis=1, keepdims=True)
    return -np.sum(p * np.log(p), axis=1)


def vote_disagreement(member_probas: np.ndarray) -> np.ndarray:
    """Jensen-Shannon-style disagreement across ensemble members.

    ``H(mean of member probas) - mean(H(member probas))`` per sample —
    zero when every member outputs the same distribution, larger the
    more the members' recommendations diverge.  Input shape is
    ``(n_members, n_samples, n_classes)``.
    """
    member_probas = np.asarray(member_probas, dtype=float)
    if member_probas.ndim != 3:
        raise ValueError("member_probas must be (n_members, n_samples, n_classes)")
    mean_entropy = np.mean(
        [vote_entropy(m) for m in member_probas], axis=0
    )
    entropy_of_mean = vote_entropy(member_probas.mean(axis=0))
    return np.maximum(entropy_of_mean - mean_entropy, 0.0)


class InferenceMonitor:
    """Per-request quality telemetry around a fitted A-DARTS engine.

    Wraps ``engine.recommend`` / ``recommend_many``: the monitor extracts
    features once, obtains per-member aligned probabilities from the
    ensemble, produces the exact same :class:`Recommendation` objects the
    bare engine would, and records into rolling windows:

    * request latency and per-series latency (seconds);
    * ensemble top-1 confidence (max soft-vote probability);
    * soft-vote disagreement (:func:`vote_disagreement`);
    * the per-algorithm recommendation mix;
    * drift scores, when a :class:`DriftDetector` is attached (one is
      built automatically from ``engine.feature_baseline_`` when
      available).
    """

    def __init__(
        self,
        engine,
        *,
        window: int = 512,
        drift_detector: DriftDetector | None = None,
        drift_window: int = 256,
        drift_min_samples: int = 64,
        observer: ServingObserver | None = None,
        slo_tracker: SloTracker | None = None,
        slo_policies=None,
        enable_slo: bool = True,
    ):
        if not getattr(engine, "is_fitted", False):
            from repro.exceptions import NotFittedError

            raise NotFittedError("InferenceMonitor requires a fitted engine")
        self.engine = engine
        self.latency = RollingWindow(window)
        self.series_latency = RollingWindow(window)
        self.confidence = RollingWindow(window)
        self.disagreement = RollingWindow(window)
        self.recommendation_mix: dict[str, int] = {}
        self._mix_lock = threading.Lock()
        self.started_at = time.time()
        self.n_requests = 0
        self.n_series = 0
        if drift_detector is None:
            baseline = getattr(engine, "feature_baseline_", None)
            if baseline is not None:
                drift_detector = DriftDetector(
                    baseline,
                    window_size=drift_window,
                    min_samples=drift_min_samples,
                )
        self.drift_detector = drift_detector
        # SLO engine: streaming latency sketches (whole process lifetime,
        # unlike the forgetting windows above) plus continuously evaluated
        # burn-rate policies.  ``enable_slo=False`` turns the whole plane
        # off (the overhead-benchmark baseline arm).
        if slo_tracker is None and enable_slo:
            slo_tracker = SloTracker(slo_policies)
        self.slo_tracker = slo_tracker
        #: Request-level latency sketch (the per-series sketch lives in
        #: the tracker).  Sketch-backed p50/p99 survive far past the
        #: rolling window's capacity.
        self.latency_sketch = QuantileSketch()
        self.observers: list[ServingObserver] = []
        #: Requests served in degraded mode (members dropped or fallback).
        self.n_degraded = 0
        #: Requests answered by the static fallback (no member voted).
        self.n_fallback = 0
        #: Per-imputer quality scorecards (count/degraded/confidence),
        #: accumulated per served series; surfaced by HealthSnapshot.
        self._imputer_cards: dict[str, dict] = {}
        #: Per-cluster scorecards (count/degraded/NCC), populated only
        #: when the engine carries a fit-time cluster atlas.
        self._cluster_cards: dict[str, dict] = {}
        #: Members already announced through ``on_member_quarantined``.
        self._announced_quarantined: set[str] = set()
        if observer is not None:
            self.add_observer(observer)

    def add_observer(self, observer: ServingObserver) -> None:
        """Register a :class:`ServingObserver` for request/drift/SLO events."""
        self.observers.append(observer)
        if self.drift_detector is not None:
            self.drift_detector.add_observer(observer)
        if self.slo_tracker is not None:
            self.slo_tracker.add_observer(observer)

    # ------------------------------------------------------------------
    def recommend(self, series):
        """Monitored single-series recommendation."""
        return self.recommend_many([series])[0]

    def recommend_many(self, series_list) -> list:
        """Monitored batch recommendation (same contract as the engine).

        Degradation-aware: the vote runs through
        ``predict_proba_detailed``, so failing ensemble members are
        dropped (and eventually quarantined) rather than failing the
        request; a fully failed ensemble falls back to the engine's
        static recommendation.  Both conditions are counted, surfaced
        through ``on_degraded`` / ``on_member_quarantined`` observer
        callbacks, and reported by :class:`HealthSnapshot`.
        """
        from repro.exceptions import EnsembleError

        engine = self.engine
        ensemble = engine._ensemble
        n_series = len(series_list)
        start = time.perf_counter()
        with get_tracer().span(
            "serving.recommend_many", subsystem="inference", n_series=n_series
        ):
            X = engine.extract_features(series_list)
            try:
                detail = ensemble.predict_proba_detailed(X)
            except EnsembleError as exc:
                _log.error(
                    "monitored vote failed entirely (%s); serving the "
                    "static fallback",
                    exc,
                )
                detail = None
            engine.last_vote_detail_ = detail
            if detail is None:
                proba = None
                member_probas = None
                recommendations = engine._fallback_recommendations(n_series)
            else:
                proba = detail.proba
                member_probas = detail.member_probas
                recommendations = engine._recommendations_from_proba(
                    proba, degraded=detail.degraded
                )
            # Provenance: one ledger "repair" row per series (a no-op
            # pass-through unless a RepairLedger is installed); emitted
            # inside the span so rows carry this request's trace id.
            recommendations = engine.annotate_with_ledger(
                series_list, recommendations, detail, source="monitor"
            )
        elapsed = time.perf_counter() - start

        # -- degradation accounting --------------------------------------
        metrics = get_metrics()
        degraded = detail is None or detail.degraded
        if degraded:
            with self._mix_lock:
                self.n_degraded += 1
                if detail is None:
                    self.n_fallback += 1
            metrics.counter(
                "repro_serving_degraded_total",
                "Monitored requests served in degraded mode",
            ).inc()
            if detail is None:
                metrics.counter(
                    "repro_serving_fallback_total",
                    "Monitored requests answered by the static fallback",
                ).inc()
            for observer in self.observers:
                observer.on_degraded(n_series, detail)
        # Newly quarantined members are announced exactly once each; the
        # check-and-claim runs under the lock so concurrent callers can't
        # both announce (and double-count) the same member.
        for member in getattr(ensemble, "quarantined_members", ()):
            with self._mix_lock:
                if member in self._announced_quarantined:
                    continue
                self._announced_quarantined.add(member)
            metrics.counter(
                "repro_serving_member_quarantines_total",
                "Ensemble members quarantined while serving",
            ).inc()
            for observer in self.observers:
                observer.on_member_quarantined(member)

        # -- windows ------------------------------------------------------
        self.latency.push(elapsed)
        if n_series:
            per_series = elapsed / n_series
            for _ in range(n_series):
                self.series_latency.push(per_series)
        if proba is not None:
            self.confidence.extend(proba.max(axis=1))
        if member_probas is not None:
            self.disagreement.extend(vote_disagreement(member_probas))
        with self._mix_lock:
            self.n_requests += 1
            self.n_series += n_series
            for rec in recommendations:
                self.recommendation_mix[rec.algorithm] = (
                    self.recommendation_mix.get(rec.algorithm, 0) + 1
                )
        slice_keys = self._update_scorecards(series_list, recommendations)

        # -- SLO plane ----------------------------------------------------
        self.latency_sketch.update(elapsed)
        if self.slo_tracker is not None:
            # One SLO event per served series (the unit the scorecards
            # and error budgets count in), evaluated once per request.
            # A fallback answer counts as an error event.
            error = detail is None
            per_series = elapsed / n_series if n_series else elapsed
            if slice_keys:
                for keys in slice_keys:
                    self.slo_tracker.record_latency(
                        per_series, error=error, slices=keys, check=False
                    )
            else:
                self.slo_tracker.record_latency(
                    elapsed, error=error, check=False
                )
            self.slo_tracker.evaluate()

        # -- metrics registry (no-op unless installed) --------------------
        metrics = get_metrics()
        metrics.counter(
            "repro_serving_requests_total", "Requests served through the monitor"
        ).inc()
        metrics.counter(
            "repro_serving_series_total", "Series served through the monitor"
        ).inc(n_series)
        metrics.histogram(
            "repro_serving_latency_seconds", "Monitored request latency"
        ).observe(elapsed)
        for rec in recommendations:
            metrics.counter(
                "repro_serving_recommendations_total",
                "Recommendations by algorithm",
                labels={"algorithm": rec.algorithm},
            ).inc()

        # -- drift + observers --------------------------------------------
        if self.drift_detector is not None:
            self.drift_detector.update(X)
        for observer in self.observers:
            observer.on_request(n_series, elapsed, recommendations)
        return recommendations

    # ------------------------------------------------------------------
    def _update_scorecards(self, series_list, recommendations) -> list:
        """Accumulate per-imputer (and, with an atlas, per-cluster) cards.

        Returns one tuple of slice keys per series (``imputer:<alg>``
        plus ``cluster:<id>`` when an atlas assigned one) — the same
        keys the scorecards aggregate under, reused by the SLO tracker's
        per-slice budgets.
        """
        atlas = getattr(self.engine, "cluster_atlas_", None)
        assignments = None
        if atlas is not None and len(atlas):
            # NCC against a handful of representatives: cheap relative to
            # feature extraction, and done outside the lock.
            assignments = [
                atlas.assign(np.asarray(s.values, dtype=float))
                for s in series_list
            ]
        slice_keys: list[tuple] = []
        with self._mix_lock:
            for idx, rec in enumerate(recommendations):
                card = self._imputer_cards.setdefault(
                    rec.algorithm,
                    {"n": 0, "degraded": 0, "confidence_sum": 0.0},
                )
                card["n"] += 1
                if rec.degraded:
                    card["degraded"] += 1
                card["confidence_sum"] += float(
                    rec.probabilities.get(rec.algorithm, 0.0)
                )
                keys = [f"imputer:{rec.algorithm}"]
                if assignments is not None and assignments[idx] is not None:
                    assignment = assignments[idx]
                    cluster = self._cluster_cards.setdefault(
                        str(assignment["cluster"]),
                        {"n": 0, "degraded": 0, "ncc_sum": 0.0},
                    )
                    cluster["n"] += 1
                    if rec.degraded:
                        cluster["degraded"] += 1
                    cluster["ncc_sum"] += float(assignment["ncc"])
                    keys.append(f"cluster:{assignment['cluster']}")
                slice_keys.append(tuple(keys))
        return slice_keys

    def scorecard_summary(self) -> dict:
        """Aggregated per-imputer / per-cluster quality scorecards."""
        with self._mix_lock:
            per_imputer = {
                name: {
                    "n": card["n"],
                    "degraded": card["degraded"],
                    "mean_confidence": (
                        card["confidence_sum"] / card["n"] if card["n"] else 0.0
                    ),
                }
                for name, card in sorted(self._imputer_cards.items())
            }
            per_cluster = {
                name: {
                    "n": card["n"],
                    "degraded": card["degraded"],
                    "mean_ncc": (
                        card["ncc_sum"] / card["n"] if card["n"] else 0.0
                    ),
                }
                for name, card in sorted(self._cluster_cards.items())
            }
        return {"per_imputer": per_imputer, "per_cluster": per_cluster}

    @property
    def uptime(self) -> float:
        return time.time() - self.started_at

    def mix_fractions(self) -> dict[str, float]:
        """Recommendation mix as fractions of all served series."""
        with self._mix_lock:
            total = sum(self.recommendation_mix.values())
            if not total:
                return {}
            return {
                name: count / total
                for name, count in sorted(self.recommendation_mix.items())
            }

    def snapshot(self) -> "HealthSnapshot":
        """Aggregate the monitor state into a :class:`HealthSnapshot`."""
        return HealthSnapshot.collect(self)


# ---------------------------------------------------------------------------
# Health snapshot
# ---------------------------------------------------------------------------
@dataclass
class HealthSnapshot:
    """One serving-health document: windows + drift + caches + backends.

    Build via :meth:`collect`; render via :meth:`to_json` (nested JSON)
    or :meth:`to_prometheus` (gauge-based text exposition, suitable for
    a node-exporter-style scrape file).
    """

    generated_at: str
    uptime_s: float
    n_requests: int
    n_series: int
    latency: dict
    series_latency: dict
    confidence: dict
    disagreement: dict
    recommendation_mix: dict
    drift: dict | None
    caches: dict
    backends: dict
    alerts: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)
    scorecards: dict = field(default_factory=dict)
    #: SLO engine status: lifetime latency sketch, per-policy burn rates,
    #: per-slice budgets (``None`` when the monitor runs without SLOs).
    slo: dict | None = None
    #: Resource accounting: RSS, live component bytes, kernel counters.
    resources: dict = field(default_factory=dict)
    #: Build identity (version + git sha), mirrored as repro_build_info.
    build: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        monitor: InferenceMonitor,
        *,
        feature_cache=None,
        score_memo=None,
        backends: dict | None = None,
    ) -> "HealthSnapshot":
        """Assemble a snapshot from a monitor plus optional cache handles.

        ``feature_cache`` defaults to the engine extractor's cache;
        ``backends`` defaults to
        :func:`repro.parallel.executor.engine_stats`.
        """
        engine = monitor.engine
        if feature_cache is None:
            feature_cache = getattr(
                getattr(engine, "extractor", None), "cache", None
            )
        # ``is not None`` matters: both caches define ``__len__``, so an
        # *empty* cache is falsy but still worth reporting.
        from repro.timeseries.batch import bank_cache_stats

        caches = {
            "feature_cache": (
                feature_cache.stats() if feature_cache is not None else None
            ),
            "score_memo": (
                score_memo.stats() if score_memo is not None else None
            ),
            # Process-wide SeriesBank derived-array cache (rFFT banks,
            # extractor spectra) — always reportable.
            "series_bank": bank_cache_stats(),
        }
        if backends is None:
            from repro.parallel.executor import engine_stats

            backends = engine_stats()
        detector = monitor.drift_detector
        drift = None
        if detector is not None:
            report = detector.last_report
            drift = {
                "enabled": True,
                "n_alerts": detector.n_alerts,
                "report": report.as_dict() if report is not None else None,
            }
        from repro.resilience.stats import resilience_stats

        quarantined = list(
            getattr(
                getattr(engine, "_ensemble", None),
                "quarantined_members",
                (),
            )
        )
        resilience = {
            "degraded_requests": monitor.n_degraded,
            "fallback_requests": monitor.n_fallback,
            "quarantined_members": quarantined,
            "process": resilience_stats(),
        }
        tracker = monitor.slo_tracker
        slo = tracker.status() if tracker is not None else None
        # Sketch-backed quantiles ride along with the window summaries:
        # the window forgets after ``capacity`` requests, the sketch
        # covers the whole process lifetime in fixed memory.
        latency = monitor.latency.summary()
        if len(monitor.latency_sketch):
            sketch_p50, sketch_p99 = monitor.latency_sketch.quantiles(
                (0.5, 0.99)
            )
            latency["sketch_p50"] = sketch_p50
            latency["sketch_p99"] = sketch_p99
            latency["sketch_count"] = monitor.latency_sketch.count
        series_latency = monitor.series_latency.summary()
        if tracker is not None and len(tracker.sketch):
            sketch_p50, sketch_p99 = tracker.sketch.quantiles((0.5, 0.99))
            series_latency["sketch_p50"] = sketch_p50
            series_latency["sketch_p99"] = sketch_p99
            series_latency["sketch_count"] = tracker.sketch.count
        return cls(
            generated_at=_dt.datetime.now(_dt.timezone.utc).isoformat(),
            uptime_s=monitor.uptime,
            n_requests=monitor.n_requests,
            n_series=monitor.n_series,
            latency=latency,
            series_latency=series_latency,
            confidence=monitor.confidence.summary(),
            disagreement=monitor.disagreement.summary(),
            recommendation_mix={
                "counts": dict(sorted(monitor.recommendation_mix.items())),
                "fractions": monitor.mix_fractions(),
            },
            drift=drift,
            caches=caches,
            backends=backends,
            alerts={
                "drift_alerts": detector.n_alerts if detector else 0,
                "slo_alerts": tracker.n_alerts if tracker is not None else 0,
                "degraded_requests": monitor.n_degraded,
                "fallback_requests": monitor.n_fallback,
                "quarantined_members": len(quarantined),
            },
            resilience=resilience,
            scorecards=monitor.scorecard_summary(),
            slo=slo,
            resources=get_accounting().snapshot(),
            build=build_info(),
        )

    def as_dict(self) -> dict:
        return {
            "generated_at": self.generated_at,
            "uptime_s": self.uptime_s,
            "n_requests": self.n_requests,
            "n_series": self.n_series,
            "latency": self.latency,
            "series_latency": self.series_latency,
            "confidence": self.confidence,
            "disagreement": self.disagreement,
            "recommendation_mix": self.recommendation_mix,
            "drift": self.drift,
            "caches": self.caches,
            "backends": self.backends,
            "alerts": self.alerts,
            "resilience": self.resilience,
            "scorecards": self.scorecards,
            "slo": self.slo,
            "resources": self.resources,
            "build": self.build,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_prometheus(self) -> str:
        """Render the snapshot as Prometheus gauges/counters."""
        registry = MetricsRegistry()
        registry.gauge(
            "repro_serving_uptime_seconds", "Monitor uptime"
        ).set(self.uptime_s)
        registry.counter(
            "repro_serving_requests_total", "Requests served"
        ).inc(self.n_requests)
        registry.counter(
            "repro_serving_series_total", "Series served"
        ).inc(self.n_series)
        for prefix, summary in (
            ("repro_serving_latency_seconds", self.latency),
            ("repro_serving_series_latency_seconds", self.series_latency),
            ("repro_serving_confidence", self.confidence),
            ("repro_serving_disagreement", self.disagreement),
        ):
            stats = ("p50", "p95", "p99", "mean")
            if "sketch_p50" in summary:
                stats = stats + ("sketch_p50", "sketch_p99")
            for stat in stats:
                registry.gauge(
                    prefix, f"Rolling-window {prefix}",
                    labels={"stat": stat},
                ).set(summary.get(stat, 0.0))
        for name, count in self.recommendation_mix.get("counts", {}).items():
            registry.counter(
                "repro_serving_recommendations_total",
                "Recommendations by algorithm",
                labels={"algorithm": name},
            ).inc(count)
        if self.drift and self.drift.get("report"):
            report = self.drift["report"]
            registry.gauge(
                "repro_drift_psi_max", "Max per-feature PSI"
            ).set(report["max_psi"])
            registry.gauge(
                "repro_drift_ks_max", "Max per-feature KS"
            ).set(report["max_ks"])
            registry.gauge(
                "repro_drift_triggered", "1 when drift thresholds are crossed"
            ).set(1.0 if report["triggered"] else 0.0)
            registry.counter(
                "repro_drift_alerts_total", "Drift alerts announced"
            ).inc(self.drift.get("n_alerts", 0))
        for cache_name, stats in self.caches.items():
            if not stats:
                continue
            registry.gauge(
                "repro_cache_hit_rate", "Cache hit rate",
                labels={"cache": cache_name},
            ).set(stats.get("hit_rate", 0.0))
            registry.gauge(
                "repro_cache_entries", "Cache entry count",
                labels={"cache": cache_name},
            ).set(stats.get("entries", 0))
        for backend, stats in self.backends.items():
            registry.counter(
                "repro_parallel_tasks_total", "Engine tasks by backend",
                labels={"backend": backend},
            ).inc(stats.get("tasks", 0))
            registry.counter(
                "repro_parallel_batches_total", "Engine batches by backend",
                labels={"backend": backend},
            ).inc(stats.get("batches", 0))
            if "workers" in stats:
                registry.gauge(
                    "repro_parallel_backend_workers",
                    "High-water worker count by backend",
                    labels={"backend": backend},
                ).set(stats.get("workers", 0))
        if self.resilience:
            registry.counter(
                "repro_serving_degraded_total", "Requests served degraded"
            ).inc(self.resilience.get("degraded_requests", 0))
            registry.counter(
                "repro_serving_fallback_total",
                "Requests answered by the static fallback",
            ).inc(self.resilience.get("fallback_requests", 0))
            registry.gauge(
                "repro_serving_quarantined_members",
                "Ensemble members currently quarantined",
            ).set(len(self.resilience.get("quarantined_members", [])))
            for key, value in self.resilience.get("process", {}).items():
                registry.counter(
                    "repro_resilience_events_total",
                    "Process-wide resilience events",
                    labels={"event": key},
                ).inc(value)
        for name, card in self.scorecards.get("per_imputer", {}).items():
            labels = {"algorithm": name}
            registry.counter(
                "repro_serving_imputer_series_total",
                "Series repaired per imputer", labels=labels,
            ).inc(card.get("n", 0))
            registry.counter(
                "repro_serving_imputer_degraded_total",
                "Degraded recommendations per imputer", labels=labels,
            ).inc(card.get("degraded", 0))
            registry.gauge(
                "repro_serving_imputer_confidence_mean",
                "Mean soft-vote confidence per imputer", labels=labels,
            ).set(card.get("mean_confidence", 0.0))
        for name, card in self.scorecards.get("per_cluster", {}).items():
            labels = {"cluster": name}
            registry.counter(
                "repro_serving_cluster_series_total",
                "Series assigned per fit-time cluster", labels=labels,
            ).inc(card.get("n", 0))
            registry.counter(
                "repro_serving_cluster_degraded_total",
                "Degraded recommendations per cluster", labels=labels,
            ).inc(card.get("degraded", 0))
            registry.gauge(
                "repro_serving_cluster_ncc_mean",
                "Mean NCC to the cluster representative", labels=labels,
            ).set(card.get("mean_ncc", 0.0))
        # -- SLO engine ----------------------------------------------------
        if self.slo:
            registry.counter(
                "repro_slo_events_total", "Events recorded by the SLO tracker"
            ).inc(self.slo.get("n_events", 0))
            registry.counter(
                "repro_slo_alerts_total", "Burn-rate SLO alerts announced"
            ).inc(self.slo.get("n_alerts", 0))
            for status in self.slo.get("policies", ()):
                labels = {"policy": status["policy"]}
                registry.gauge(
                    "repro_slo_burn_rate_fast",
                    "Fast-window error-budget burn rate per policy",
                    labels=labels,
                ).set(status.get("fast_burn", 0.0))
                registry.gauge(
                    "repro_slo_burn_rate_slow",
                    "Slow-window error-budget burn rate per policy",
                    labels=labels,
                ).set(status.get("slow_burn", 0.0))
                registry.gauge(
                    "repro_slo_budget_remaining",
                    "Remaining error-budget fraction per policy (slow window)",
                    labels=labels,
                ).set(status.get("budget_remaining", 0.0))
                registry.gauge(
                    "repro_slo_alerting",
                    "1 while the policy's burn-rate alert is active",
                    labels=labels,
                ).set(1.0 if status.get("alerting") else 0.0)
        # -- resource accounting -------------------------------------------
        if self.resources:
            process = self.resources.get("process", {})
            registry.gauge(
                "repro_process_rss_bytes", "Resident set size"
            ).set(process.get("rss_bytes", 0))
            registry.gauge(
                "repro_process_rss_hwm_bytes", "Resident set high-water mark"
            ).set(process.get("tracked_hwm_bytes", process.get("hwm_bytes", 0)))
            for component, account in self.resources.get("accounts", {}).items():
                labels = {"component": component}
                registry.gauge(
                    "repro_resource_bytes",
                    "Live bytes held per instrumented component",
                    labels=labels,
                ).set(account.get("bytes", 0))
                registry.gauge(
                    "repro_resource_peak_bytes",
                    "Peak live bytes per instrumented component",
                    labels=labels,
                ).set(account.get("peak_bytes", 0))
                registry.gauge(
                    "repro_resource_items",
                    "Live items held per instrumented component",
                    labels=labels,
                ).set(account.get("items", 0))
            for kernel, counters in self.resources.get("kernels", {}).items():
                labels = {"kernel": kernel}
                registry.counter(
                    "repro_kernel_calls_total",
                    "Instrumented kernel invocations", labels=labels,
                ).inc(counters.get("calls", 0))
                registry.counter(
                    "repro_kernel_bytes_moved_total",
                    "Working-set bytes moved per kernel", labels=labels,
                ).inc(counters.get("bytes_moved", 0))
                registry.counter(
                    "repro_kernel_chunks_total",
                    "Blockwise chunks executed per kernel", labels=labels,
                ).inc(counters.get("chunks", 0))
                registry.counter(
                    "repro_kernel_scratch_allocations_total",
                    "Scratch allocations per kernel", labels=labels,
                ).inc(counters.get("scratch_allocations", 0))
            for backend, count in self.resources.get(
                "backend_decisions", {}
            ).items():
                registry.counter(
                    "repro_backend_decisions_total",
                    "Executor backend resolutions", labels={"backend": backend},
                ).inc(count)
        return registry.to_prometheus()

    def export(self, path):
        """Write the snapshot; ``.prom``/``.txt`` selects Prometheus text."""
        import pathlib

        path = pathlib.Path(path)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.to_prometheus())
        else:
            path.write_text(self.to_json())
        return path
