"""Human-readable run reports from saved trace / metrics files.

Powers the ``repro report`` CLI subcommand: load a trace exported by
:class:`~repro.observability.tracing.Tracer` (either the plain-JSON span
list or the Chrome ``trace_event`` document), aggregate per-span-name
statistics, recover the race's evaluation/pruning counts from the
iteration span tags, and render a fixed-width text summary.  Metrics
dumps (JSON or Prometheus text) are folded in when provided.
"""

from __future__ import annotations

import json
import pathlib

from repro.exceptions import ValidationError


def load_trace(path) -> list[dict]:
    """Load spans from ``path`` into a normalized list of dicts.

    Accepts both export formats; the normalized spans carry ``name``,
    ``wall_time`` (seconds), and ``tags``.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such trace file: {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from None
    if isinstance(document, dict) and "traceEvents" in document:
        spans = []
        for event in document["traceEvents"]:
            if event.get("ph") != "X":
                continue
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "wall_time": float(event.get("dur", 0.0)) / 1e6,
                    "start_time": float(event.get("ts", 0.0)) / 1e6,
                    "tags": dict(event.get("args", {})),
                }
            )
        return spans
    if isinstance(document, list):
        return [
            {
                "name": span.get("name", "?"),
                "wall_time": float(span.get("wall_time", 0.0)),
                "start_time": float(span.get("start_time", 0.0)),
                "tags": dict(span.get("tags", {})),
            }
            for span in document
        ]
    raise ValidationError(
        f"{path}: unrecognized trace format (expected a span list or a "
        "Chrome traceEvents document)"
    )


def load_metrics(path) -> dict:
    """Load a metrics dump (JSON or Prometheus text) into a flat dict.

    Returns ``{rendered_name: value}`` where histogram summaries keep
    their quantile/sum/count sub-entries.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such metrics file: {path}")
    text = path.read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        return _parse_prometheus(text)
    flat: dict = {}
    try:
        for name, by_labels in document.items():
            for labels, payload in by_labels.items():
                key = name if labels == "_" else f"{name}{labels}"
                if payload.get("type") == "histogram":
                    for stat, value in payload.items():
                        if stat != "type":
                            flat[f"{key}:{stat}"] = value
                else:
                    flat[key] = payload.get("value", 0.0)
    except (AttributeError, TypeError):
        raise ValidationError(
            f"{path}: unrecognized metrics format (expected the JSON "
            "document written by --metrics-out)"
        ) from None
    return flat


def _parse_prometheus(text: str) -> dict:
    flat: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(None, 1)
            flat[name_part] = float(value_part)
        except ValueError:
            continue
    return flat


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
def summarize_trace(spans: list[dict]) -> dict:
    """Aggregate normalized spans into report-ready statistics."""
    by_name: dict[str, dict] = {}
    for span in spans:
        stats = by_name.setdefault(
            span["name"],
            {"count": 0, "total": 0.0, "max": 0.0},
        )
        stats["count"] += 1
        stats["total"] += span["wall_time"]
        stats["max"] = max(stats["max"], span["wall_time"])
    for stats in by_name.values():
        stats["mean"] = stats["total"] / max(stats["count"], 1)

    # Race bookkeeping lives in the iteration span tags.
    iteration_tags = [
        span["tags"] for span in spans if span["name"] == "race.iteration"
    ]
    n_evaluations = sum(
        int(t.get("n_evaluations", 0) or 0) for t in iteration_tags
    )
    n_potential = sum(
        int(t.get("n_candidates", 0) or 0) * int(t.get("n_folds", 0) or 0)
        for t in iteration_tags
    )
    n_early = sum(
        int(t.get("n_early_terminated", 0) or 0) for t in iteration_tags
    )
    n_pruned = sum(
        int(t.get("n_ttest_pruned", 0) or 0) for t in iteration_tags
    )
    n_candidates = sum(
        int(t.get("n_candidates", 0) or 0) for t in iteration_tags
    )
    n_failures = sum(int(t.get("n_failures", 0) or 0) for t in iteration_tags)
    prune_ratio = (
        1.0 - n_evaluations / n_potential if n_potential else 0.0
    )
    early_ratio = n_early / n_candidates if n_candidates else 0.0

    subsystems = sorted(
        {
            str(span["tags"].get("subsystem"))
            for span in spans
            if span["tags"].get("subsystem")
        }
    )
    return {
        "n_spans": len(spans),
        "total_wall_time": sum(s["wall_time"] for s in spans),
        "by_name": by_name,
        "subsystems": subsystems,
        "race": {
            "n_iterations": len(iteration_tags),
            "n_candidates": n_candidates,
            "n_evaluations": n_evaluations,
            "n_potential_evaluations": n_potential,
            "n_early_terminated": n_early,
            "n_ttest_pruned": n_pruned,
            "n_failures": n_failures,
            "prune_ratio": prune_ratio,
            "early_termination_ratio": early_ratio,
        },
    }


def slowest_spans(spans: list[dict], top: int = 10) -> list[dict]:
    """The ``top`` individually slowest spans, slowest first."""
    return sorted(spans, key=lambda s: s["wall_time"], reverse=True)[:top]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def render_report(
    spans: list[dict], metrics: dict | None = None, top: int = 10
) -> str:
    """Render the full fixed-width text report."""
    summary = summarize_trace(spans)
    race = summary["race"]
    lines: list[str] = []
    lines.append("=" * 72)
    lines.append("A-DARTS run report")
    lines.append("=" * 72)
    lines.append(f"spans recorded     : {summary['n_spans']}")
    lines.append(
        f"subsystems covered : {', '.join(summary['subsystems']) or '(none)'}"
    )
    lines.append("")

    lines.append("-- ModelRace ----------------------------------------------")
    lines.append(f"iterations            : {race['n_iterations']}")
    lines.append(f"candidates raced      : {race['n_candidates']}")
    lines.append(
        f"evaluations           : {race['n_evaluations']} "
        f"(of {race['n_potential_evaluations']} potential)"
    )
    lines.append(f"early-terminated      : {race['n_early_terminated']}")
    lines.append(f"t-test pruned         : {race['n_ttest_pruned']}")
    lines.append(f"failed evaluations    : {race['n_failures']}")
    lines.append(f"prune ratio           : {race['prune_ratio']:.1%}")
    lines.append(
        f"early-termination rate: {race['early_termination_ratio']:.1%}"
    )
    lines.append("")

    lines.append("-- Time by span name --------------------------------------")
    lines.append(
        f"{'name':<32}{'count':>7}{'total(s)':>11}{'mean(s)':>11}{'max(s)':>11}"
    )
    ordered = sorted(
        summary["by_name"].items(),
        key=lambda item: item[1]["total"],
        reverse=True,
    )
    for name, stats in ordered:
        lines.append(
            f"{name[:31]:<32}{stats['count']:>7}{stats['total']:>11.4f}"
            f"{stats['mean']:>11.5f}{stats['max']:>11.4f}"
        )
    lines.append("")

    lines.append("-- Slowest spans ------------------------------------------")
    lines.append(f"{'name':<32}{'wall(s)':>11}  tags")
    for span in slowest_spans(spans, top=top):
        tags = {
            k: v
            for k, v in span["tags"].items()
            if k not in ("cpu_time",)
        }
        tag_text = ", ".join(f"{k}={v}" for k, v in list(tags.items())[:4])
        lines.append(
            f"{span['name'][:31]:<32}{span['wall_time']:>11.4f}  {tag_text}"
        )

    if metrics:
        lines.append("")
        lines.append("-- Metrics ------------------------------------------------")
        for key in sorted(metrics):
            value = metrics[key]
            if isinstance(value, float) and not value.is_integer():
                lines.append(f"{key:<56} {value:.6g}")
            else:
                lines.append(f"{key:<56} {value}")
    lines.append("=" * 72)
    return "\n".join(lines)
