"""Topological feature extraction (Section V-B, Fig. 4).

The extractor follows the paper's recipe:

1. **Time-delay embedding** — map the series into vectors
   ``v(j) = (v_j, v_{j+tau}, ..., v_{j+(d-1)tau})`` capturing nonlinear
   temporal structure;
2. **Persistence diagram** — record the birth/death of patterns.  We compute
   two complementary 0-dimensional diagrams, both exact:

   * the *Rips diagram of the embedded point cloud* via its Euclidean
     minimum spanning tree (the 0-dim Rips persistence is exactly the MST
     edge set) — captures the cloud's cluster/loop-scale geometry;
   * the *sublevel-set diagram of the raw signal* via union-find over the
     value filtration — captures when each valley/peak pattern is born and
     dies, which is sensitive to temporal order (statistical features are
     time-agnostic; this is not).

3. **Diagram statistics** — lifetimes, persistence entropy, and
   distributional summaries become the feature vector.

Computing 1-dimensional (hole) persistence exactly requires boundary-matrix
reduction, too slow to run per-series inside ModelRace; the two 0-dim
diagrams above retain the order- and shape-sensitivity the paper needs (the
ablation in Fig. 9 reproduces with them).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.observability.resources import get_accounting
from repro.timeseries.series import TimeSeries


def _prepare(series) -> np.ndarray:
    if isinstance(series, TimeSeries):
        if series.has_missing:
            series = series.interpolated()
        return series.values.astype(float)
    arr = np.asarray(series, dtype=float)
    if np.isnan(arr).any():
        arr = TimeSeries(arr).interpolated().values
    return arr


def delay_embedding(series, dimension: int = 3, delay: int = 2) -> np.ndarray:
    """Time-delay embedding of a series into ``dimension``-D space.

    Returns an array of shape (n_vectors, dimension) where
    ``n_vectors = n - (dimension - 1) * delay``.
    """
    x = _prepare(series)
    if dimension < 1:
        raise ValidationError(f"dimension must be >= 1, got {dimension}")
    if delay < 1:
        raise ValidationError(f"delay must be >= 1, got {delay}")
    n = x.shape[0]
    n_vectors = n - (dimension - 1) * delay
    if n_vectors < 2:
        raise ValidationError(
            f"series of length {n} too short for embedding "
            f"(dimension={dimension}, delay={delay})"
        )
    idx = np.arange(n_vectors)[:, None] + delay * np.arange(dimension)[None, :]
    return x[idx]


class _UnionFind:
    """Union-find with elder rule: merging keeps the earlier-born root.

    ``parent``/``birth`` are plain Python lists: the filtration loop in
    :func:`persistence_diagram` touches single elements millions of times
    per corpus, and numpy scalar indexing (boxing each element into a
    0-d array) made that the sublevel-persistence hot spot.  List
    indexing returns native ints/floats with no boxing.
    """

    __slots__ = ("parent", "birth")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.birth = [float("inf")] * n

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(self, i: int, j: int, death: float) -> tuple[float, float] | None:
        """Merge components of i and j; return (birth, death) of the dying one."""
        ri, rj = self.find(i), self.find(j)
        if ri == rj:
            return None
        # Elder rule: the younger component (larger birth) dies.
        if self.birth[ri] > self.birth[rj]:
            ri, rj = rj, ri
        dying_birth = self.birth[rj]
        self.parent[rj] = ri
        return (dying_birth, death)


def _mst_edge_lengths(points: np.ndarray) -> np.ndarray:
    """Euclidean MST edge lengths via Prim's algorithm (dense, O(n^2))."""
    n = points.shape[0]
    if n < 2:
        return np.empty(0)
    sq = ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = sq[0].copy()
    edges = np.empty(n - 1)
    for k in range(n - 1):
        best_masked = np.where(in_tree, np.inf, best)
        j = int(np.argmin(best_masked))
        edges[k] = np.sqrt(best_masked[j])
        in_tree[j] = True
        best = np.minimum(best, sq[j])
    return np.sort(edges)


def _sublevel_pairs(values: list, order: list) -> list[tuple[float, float]]:
    """Finite (birth, death) pairs of the sublevel-set filtration.

    ``values``/``order`` are plain Python lists (see :class:`_UnionFind` on
    why): the per-element filtration loop is the sublevel hot spot and is
    inherently sequential, so the block path runs it per row too.
    """
    n = len(values)
    uf = _UnionFind(n)
    active = [False] * n
    birth = uf.birth
    pairs: list[tuple[float, float]] = []
    for idx in order:
        value = values[idx]
        birth[idx] = value
        active[idx] = True
        for nb in (idx - 1, idx + 1):
            if 0 <= nb < n and active[nb]:
                died = uf.union(idx, nb, value)
                if died is not None and died[1] > died[0]:
                    pairs.append(died)
    return pairs


def persistence_diagram(
    series,
    kind: str = "sublevel",
    dimension: int = 3,
    delay: int = 2,
    max_points: int = 128,
) -> np.ndarray:
    """Compute a 0-dimensional persistence diagram.

    Parameters
    ----------
    series:
        Input series (faulty input is interpolated first).
    kind:
        ``"sublevel"`` — components of ``{t : x_t <= threshold}`` as the
        threshold sweeps upward (births at local minima, deaths at merges);
        ``"rips"`` — 0-dim Rips diagram of the delay embedding (all births
        at 0, deaths at MST edge lengths).
    dimension, delay:
        Embedding parameters for ``kind="rips"``.
    max_points:
        Subsample cap on the embedded cloud (keeps MST O(max_points^2)).

    Returns
    -------
    Array of shape (n_pairs, 2) with columns (birth, death); the essential
    (never-dying) component is excluded.
    """
    x = _prepare(series)
    if kind == "rips":
        cloud = delay_embedding(x, dimension=dimension, delay=delay)
        if cloud.shape[0] > max_points:
            step = cloud.shape[0] / max_points
            idx = (step * np.arange(max_points)).astype(int)
            cloud = cloud[idx]
        deaths = _mst_edge_lengths(cloud)
        return np.column_stack([np.zeros_like(deaths), deaths])
    if kind != "sublevel":
        raise ValidationError(f"kind must be 'sublevel' or 'rips', got {kind!r}")
    # Pre-convert to native Python ints/floats once: the filtration loop
    # indexes per element, where numpy scalar boxing dominates.
    order = np.argsort(x, kind="stable").tolist()
    pairs = _sublevel_pairs(x.tolist(), order)
    if not pairs:
        return np.empty((0, 2))
    return np.asarray(pairs, dtype=float)


def _diagram_stats(diagram: np.ndarray, prefix: str) -> dict[str, float]:
    """Summaries of one diagram: lifetime distribution + entropy."""
    if diagram.shape[0] == 0:
        keys = (
            "count", "life_mean", "life_std", "life_max", "life_sum",
            "life_q75", "entropy", "top_ratio",
        )
        return {f"{prefix}_{k}": 0.0 for k in keys}
    lifetimes = diagram[:, 1] - diagram[:, 0]
    total = lifetimes.sum()
    if total > 0:
        p = lifetimes / total
        entropy = float(-(p * np.log(p + 1e-15)).sum() / np.log(max(2, p.size)))
        top_ratio = float(lifetimes.max() / total)
    else:
        entropy, top_ratio = 0.0, 0.0
    return {
        f"{prefix}_count": float(np.log1p(diagram.shape[0])),
        f"{prefix}_life_mean": float(lifetimes.mean()),
        f"{prefix}_life_std": float(lifetimes.std()),
        f"{prefix}_life_max": float(lifetimes.max()),
        f"{prefix}_life_sum": float(np.log1p(total)),
        f"{prefix}_life_q75": float(np.percentile(lifetimes, 75)),
        f"{prefix}_entropy": entropy,
        f"{prefix}_top_ratio": top_ratio,
    }


def topological_features(
    series, dimension: int = 3, delay: int = 2
) -> dict[str, float]:
    """Full topological feature vector (16 features).

    Series are z-normalized first so diagram scales are comparable across
    datasets; degenerate (constant or too-short) series yield all-zero
    vectors rather than raising.
    """
    x = _prepare(series)
    std = x.std()
    if std > 0:
        x = (x - x.mean()) / std
    feats: dict[str, float] = {}
    sub = persistence_diagram(x, kind="sublevel")
    feats.update(_diagram_stats(sub, "topo_sub"))
    try:
        rips = persistence_diagram(x, kind="rips", dimension=dimension, delay=delay)
    except ValidationError:
        rips = np.empty((0, 2))
    feats.update(_diagram_stats(rips, "topo_rips"))
    return feats


#: Stable ordering of topological feature names.
TOPOLOGICAL_FEATURE_NAMES: tuple[str, ...] = tuple(
    topological_features(np.sin(np.linspace(0, 12.56, 128))).keys()
)


# ---------------------------------------------------------------------------
# Blockwise kernels over a stacked ``(n_series, length)`` matrix.  The Rips
# side (delay embedding → pairwise distances → MST) batches fully: Prim's
# algorithm runs in lockstep over a whole stack of distance matrices, so its
# Python loop runs ``n_points`` times per *chunk* instead of per series.  The
# sublevel filtration is inherently sequential and stays per-row.
# ---------------------------------------------------------------------------

#: Target size for one chunk of stacked distance matrices (bytes).
_MST_CHUNK_BYTES = 32 * 1024 * 1024

_DIAGRAM_STAT_KEYS = (
    "count", "life_mean", "life_std", "life_max", "life_sum",
    "life_q75", "entropy", "top_ratio",
)


def _mst_edge_lengths_block(sq: np.ndarray) -> np.ndarray:
    """Lockstep Prim over a stack of squared-distance matrices.

    ``sq`` has shape ``(batch, n, n)``; returns ``(batch, n - 1)`` sorted
    edge lengths, each row identical to ``_mst_edge_lengths`` on the
    corresponding point set (argmin tie-breaking included).
    """
    batch, n = sq.shape[0], sq.shape[1]
    if n < 2:
        return np.empty((batch, 0))
    rows = np.arange(batch)
    in_tree = np.zeros((batch, n), dtype=bool)
    in_tree[:, 0] = True
    best = sq[:, 0, :].copy()
    edges = np.empty((batch, n - 1))
    for k in range(n - 1):
        best_masked = np.where(in_tree, np.inf, best)
        j = np.argmin(best_masked, axis=1)
        edges[:, k] = np.sqrt(best_masked[rows, j])
        in_tree[rows, j] = True
        best = np.minimum(best, sq[rows, j])
    return np.sort(edges, axis=1)


def _diagram_stats_block(lifetimes: np.ndarray, prefix: str) -> dict[str, np.ndarray]:
    """Vectorized :func:`_diagram_stats` for fixed-size (Rips) diagrams.

    ``lifetimes`` has shape ``(n_series, n_pairs)`` — every row has the same
    pair count, true of Rips diagrams (always ``n_points - 1`` MST edges).
    """
    n_rows, n_pairs = lifetimes.shape
    if n_pairs == 0:
        return {f"{prefix}_{k}": np.zeros(n_rows) for k in _DIAGRAM_STAT_KEYS}
    total = lifetimes.sum(axis=1)
    entropy = np.zeros(n_rows)
    top_ratio = np.zeros(n_rows)
    ok = total > 0
    if ok.any():
        p = lifetimes[ok] / total[ok, None]
        entropy[ok] = -(p * np.log(p + 1e-15)).sum(axis=1) / np.log(max(2, n_pairs))
        top_ratio[ok] = lifetimes[ok].max(axis=1) / total[ok]
    return {
        f"{prefix}_count": np.full(n_rows, np.log1p(n_pairs)),
        f"{prefix}_life_mean": lifetimes.mean(axis=1),
        f"{prefix}_life_std": lifetimes.std(axis=1),
        f"{prefix}_life_max": lifetimes.max(axis=1),
        f"{prefix}_life_sum": np.log1p(total),
        f"{prefix}_life_q75": np.percentile(lifetimes, 75, axis=1),
        f"{prefix}_entropy": entropy,
        f"{prefix}_top_ratio": top_ratio,
    }


def topological_features_block(
    matrix,
    *,
    dimension: int = 3,
    delay: int = 2,
    max_points: int = 128,
) -> dict[str, np.ndarray]:
    """All 16 topological features over a stack of equal-length rows.

    ``matrix`` is ``(n_series, length)`` with no NaNs.  Returns ``{name:
    (n_series,) float64 array}`` in :data:`TOPOLOGICAL_FEATURE_NAMES` order;
    each column matches the scalar :func:`topological_features` on the
    corresponding row.
    """
    X = np.asarray(matrix)
    if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
        raise ValidationError(
            "topological_features_block expects a non-empty 2-D matrix"
        )
    if X.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        X = X.astype(np.float64)
    if not np.isfinite(X).all():
        raise ValidationError(
            "topological_features_block expects finite rows; interpolate first"
        )
    n_rows, length = X.shape
    stds = X.std(axis=1)
    znorm = np.where(
        (stds > 0)[:, None],
        (X - X.mean(axis=1, keepdims=True)) / np.where(stds > 0, stds, 1.0)[:, None],
        X,
    )
    # Sublevel filtration: batch the stable argsort, pair per row.
    orders = np.argsort(znorm, axis=1, kind="stable")
    sub_cols: dict[str, np.ndarray] = {
        f"topo_sub_{k}": np.zeros(n_rows) for k in _DIAGRAM_STAT_KEYS
    }
    for i in range(n_rows):
        pairs = _sublevel_pairs(znorm[i].tolist(), orders[i].tolist())
        diagram = np.asarray(pairs, dtype=float) if pairs else np.empty((0, 2))
        for key, value in _diagram_stats(diagram, "topo_sub").items():
            sub_cols[key][i] = value
    feats = sub_cols
    # Rips diagrams: batched embedding, chunked distance stacks, lockstep MST.
    n_vectors = length - (dimension - 1) * delay
    if n_vectors < 2:
        feats.update(
            {f"topo_rips_{k}": np.zeros(n_rows) for k in _DIAGRAM_STAT_KEYS}
        )
        return feats
    embed_idx = np.arange(n_vectors)[:, None] + delay * np.arange(dimension)[None, :]
    cloud = znorm[:, embed_idx]
    if n_vectors > max_points:
        step = n_vectors / max_points
        cloud = cloud[:, (step * np.arange(max_points)).astype(int)]
    n_points = cloud.shape[1]
    chunk = max(1, _MST_CHUNK_BYTES // (n_points * n_points * (dimension + 1) * 8))
    edges = np.empty((n_rows, n_points - 1))
    n_chunks = 0
    scratch_bytes = 0
    for start in range(0, n_rows, chunk):
        part = cloud[start : start + chunk]
        sq = ((part[:, :, None, :] - part[:, None, :, :]) ** 2).sum(axis=3)
        edges[start : start + chunk] = _mst_edge_lengths_block(sq)
        n_chunks += 1
        scratch_bytes += sq.nbytes
    get_accounting().record_kernel(
        "topological_mst",
        bytes_moved=cloud.nbytes + edges.nbytes + scratch_bytes,
        chunks=n_chunks,
        scratch_allocations=n_chunks,
    )
    feats.update(_diagram_stats_block(edges, "topo_rips"))
    return feats
