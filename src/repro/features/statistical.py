"""Statistical feature extraction (Section V-B).

The paper concatenates features from TSFresh/Catch22/Kats-style extractors
and groups them into three coarse categories, reproduced here:

* **Canonical** — basic summary statistics of value distribution and change;
* **Dependencies** — autocorrelation structure at several lags, partial
  autocorrelations, and nonlinearity of dependence;
* **Trends** — seasonality, spectral shape, stationarity, and linear-trend
  diagnostics.

Every function accepts a :class:`~repro.timeseries.TimeSeries` or raw array;
missing values are linearly interpolated first (features must be computable
on faulty input — that is the whole point of the recommender).  Each function
returns an ordered ``dict[str, float]``; all values are finite.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import stats as sps

from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeries


def _prepare(series) -> np.ndarray:
    """Coerce to a clean 1-D array (interpolate NaNs, drop non-finite)."""
    if isinstance(series, TimeSeries):
        if series.has_missing:
            series = series.interpolated()
        arr = series.values.astype(float)
    else:
        arr = np.asarray(series, dtype=float)
        if np.isnan(arr).any():
            arr = TimeSeries(arr).interpolated().values
    return arr


def _finite(value: float) -> float:
    """Map NaN/inf from degenerate inputs to 0.0 so vectors stay usable."""
    value = float(value)
    return value if np.isfinite(value) else 0.0


def _autocorrelation(x: np.ndarray, lag: int) -> float:
    n = x.shape[0]
    if lag >= n or lag < 1:
        return 0.0
    x0 = x - x.mean()
    denom = float(x0 @ x0)
    if denom == 0.0:
        return 0.0
    return float(x0[:-lag] @ x0[lag:] / denom)


def canonical_features(series) -> dict[str, float]:
    """Basic distributional and change statistics (13 features)."""
    x = _prepare(series)
    diffs = np.diff(x) if x.shape[0] > 1 else np.zeros(1)
    std = x.std()
    q25, q50, q75 = np.percentile(x, [25, 50, 75])
    span = x.max() - x.min()
    above = (x > x.mean()).mean()
    crossings = 0.0
    if x.shape[0] > 1:
        centered = x - np.median(x)
        crossings = float(np.mean(np.sign(centered[:-1]) != np.sign(centered[1:])))
    return {
        "canon_mean": _finite(x.mean()),
        "canon_std": _finite(std),
        "canon_skew": _finite(sps.skew(x)) if std > 0 else 0.0,
        "canon_kurtosis": _finite(sps.kurtosis(x)) if std > 0 else 0.0,
        "canon_median": _finite(q50),
        "canon_iqr": _finite(q75 - q25),
        "canon_range": _finite(span),
        "canon_cv": _finite(std / (abs(x.mean()) + 1e-12)),
        "canon_above_mean_ratio": _finite(above),
        "canon_abs_diff_mean": _finite(np.abs(diffs).mean()),
        "canon_diff_std": _finite(diffs.std()),
        "canon_median_crossings": _finite(crossings),
        "canon_energy": _finite((x**2).mean()),
    }


def dependency_features(series) -> dict[str, float]:
    """Autocorrelation structure (14 features)."""
    x = _prepare(series)
    n = x.shape[0]
    feats: dict[str, float] = {}
    lags = (1, 2, 3, 5, 10, 20)
    acfs = []
    for lag in lags:
        value = _autocorrelation(x, lag)
        feats[f"dep_acf_lag{lag}"] = _finite(value)
        acfs.append(value)
    # First zero crossing of the ACF (a period proxy).
    first_zero = 0.0
    max_lag = min(n // 2, 128) if n > 4 else n - 1
    prev = 1.0
    for lag in range(1, max_lag):
        cur = _autocorrelation(x, lag)
        if prev > 0 >= cur:
            first_zero = lag / max_lag
            break
        prev = cur
    feats["dep_acf_first_zero"] = _finite(first_zero)
    # Sum of squared ACF over first 10 lags: overall linear memory.
    feats["dep_acf_energy10"] = _finite(
        sum(_autocorrelation(x, lag) ** 2 for lag in range(1, min(11, n)))
    )
    # Partial autocorrelation at lag 2 via Durbin-Levinson.
    r1, r2 = _autocorrelation(x, 1), _autocorrelation(x, 2)
    pacf2 = (r2 - r1**2) / (1 - r1**2) if abs(r1) < 1 else 0.0
    feats["dep_pacf_lag2"] = _finite(pacf2)
    # Nonlinear dependence: autocorrelation of squared (centered) values.
    xc = x - x.mean()
    feats["dep_acf_sq_lag1"] = _finite(_autocorrelation(xc**2, 1))
    # Mutual-information proxy: correlation between x_t and x_{t+1} ranks.
    if n > 2 and x.std() > 0:
        rho = sps.spearmanr(x[:-1], x[1:]).statistic
    else:
        rho = 0.0
    feats["dep_rank_acf_lag1"] = _finite(rho)
    # Time irreversibility (third-order moment of diffs).
    diffs = np.diff(x) if n > 1 else np.zeros(1)
    denom = (diffs**2).mean() ** 1.5 + 1e-12
    feats["dep_time_irreversibility"] = _finite((diffs**3).mean() / denom)
    # Hurst-style rescaled-range proxy on two scales.
    feats["dep_rs_ratio"] = _finite(_rescaled_range_ratio(x))
    feats["dep_acf_mean_abs"] = _finite(float(np.mean(np.abs(acfs))))
    return feats


def _rescaled_range_ratio(x: np.ndarray) -> float:
    """log2(R/S at full length / R/S at half length) — long-memory proxy."""
    def rs(seg: np.ndarray) -> float:
        if seg.shape[0] < 4:
            return 0.0
        dev = np.cumsum(seg - seg.mean())
        r = dev.max() - dev.min()
        s = seg.std()
        return r / s if s > 0 else 0.0

    full = rs(x)
    half = (rs(x[: x.shape[0] // 2]) + rs(x[x.shape[0] // 2 :])) / 2
    if half <= 0 or full <= 0:
        return 0.0
    return float(np.log2(full / half))


def trend_features(series) -> dict[str, float]:
    """Seasonality, spectrum, stationarity, and linear trend (13 features)."""
    x = _prepare(series)
    n = x.shape[0]
    feats: dict[str, float] = {}
    t = np.arange(n, dtype=float)
    # Linear trend fit.
    if n > 2 and x.std() > 0:
        slope, intercept = np.polyfit(t, x, 1)
        resid = x - (slope * t + intercept)
        r2 = 1.0 - resid.var() / x.var()
    else:
        slope, r2, resid = 0.0, 0.0, x - x.mean()
    feats["trend_slope"] = _finite(slope)
    feats["trend_r2"] = _finite(max(0.0, r2))
    feats["trend_resid_std"] = _finite(resid.std())
    # Spectral features from the periodogram of the detrended series.
    detrended = resid - resid.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    spectrum = spectrum[1:]  # drop DC
    if spectrum.size and spectrum.sum() > 0:
        p = spectrum / spectrum.sum()
        spec_entropy = float(-(p * np.log(p + 1e-15)).sum() / np.log(p.size))
        peak_idx = int(np.argmax(spectrum))
        peak_freq = (peak_idx + 1) / n
        peak_power = float(p[peak_idx])
        centroid = float((np.arange(1, p.size + 1) * p).sum() / p.size)
        low = p[: max(1, p.size // 10)].sum()
    else:
        spec_entropy, peak_freq, peak_power, centroid, low = 1.0, 0.0, 0.0, 0.0, 0.0
    feats["trend_spectral_entropy"] = _finite(spec_entropy)
    feats["trend_peak_freq"] = _finite(peak_freq)
    feats["trend_peak_power"] = _finite(peak_power)
    feats["trend_spectral_centroid"] = _finite(centroid)
    feats["trend_lowfreq_power"] = _finite(low)
    # Seasonality strength via best seasonal-difference variance reduction.
    feats["trend_seasonality_strength"] = _finite(_seasonality_strength(x))
    # Stationarity: variance of windowed means / windowed variances.
    feats["trend_stat_mean_drift"], feats["trend_stat_var_drift"] = _stationarity(x)
    # Step-change detection: max jump of windowed means (perturbation proxy).
    feats["trend_level_shift"] = _finite(_level_shift(x))
    # Curvature (quadratic coefficient) of the global fit.
    if n > 3 and x.std() > 0:
        quad = np.polyfit(t, x, 2)[0]
    else:
        quad = 0.0
    feats["trend_curvature"] = _finite(quad)
    return feats


def _seasonality_strength(x: np.ndarray) -> float:
    n = x.shape[0]
    best = 0.0
    var = x.var()
    if var == 0:
        return 0.0
    for period in (4, 7, 12, 24, 50, 96):
        if period * 2 >= n:
            continue
        seasonal_diff = x[period:] - x[:-period]
        strength = 1.0 - seasonal_diff.var() / (2 * var)
        best = max(best, strength)
    return max(0.0, min(1.0, best))


def _stationarity(x: np.ndarray) -> tuple[float, float]:
    n = x.shape[0]
    k = max(2, min(8, n // 16))
    windows = np.array_split(x, k)
    means = np.array([w.mean() for w in windows])
    variances = np.array([w.var() for w in windows])
    scale = x.std() + 1e-12
    mean_drift = means.std() / scale
    var_drift = variances.std() / (scale**2)
    return _finite(mean_drift), _finite(var_drift)


def _level_shift(x: np.ndarray) -> float:
    n = x.shape[0]
    w = max(4, n // 12)
    if n < 2 * w:
        return 0.0
    means = np.array([x[i : i + w].mean() for i in range(0, n - w, w)])
    if means.size < 2:
        return 0.0
    scale = x.std() + 1e-12
    return float(np.abs(np.diff(means)).max() / scale)


def statistical_features(series) -> dict[str, float]:
    """All statistical features: canonical + dependencies + trends (40 total)."""
    feats = canonical_features(series)
    feats.update(dependency_features(series))
    feats.update(trend_features(series))
    return feats


#: Stable ordering of statistical feature names (probe a tiny series once).
STATISTICAL_FEATURE_NAMES: tuple[str, ...] = tuple(
    statistical_features(np.sin(np.linspace(0, 6.28, 64))).keys()
)


# ---------------------------------------------------------------------------
# Blockwise kernels: every feature as a column-wise reduction over a stacked
# ``(n_series, length)`` matrix.  Each kernel mirrors its scalar counterpart
# above — same guards, same degenerate-input defaults — so a block result
# matches per-series extraction to ~1e-9 (exactly, for most features).
# ---------------------------------------------------------------------------


def _finite_rows(values: np.ndarray) -> np.ndarray:
    """Vector analogue of :func:`_finite`: NaN/inf → 0.0, elementwise."""
    out = np.asarray(values, dtype=np.float64).copy()
    np.copyto(out, 0.0, where=~np.isfinite(out))
    return out


def _acf_matrix(x0: np.ndarray, denom: np.ndarray, max_lag: int) -> np.ndarray:
    """ACF of pre-centered rows at lags ``0..max_lag`` (column 0 unused).

    Rows with zero energy (``denom == 0``) and lags ``>= length`` yield 0.0,
    matching :func:`_autocorrelation`.
    """
    n_rows, length = x0.shape
    acf = np.zeros((n_rows, max_lag + 1), dtype=x0.dtype)
    safe = denom != 0
    for lag in range(1, max_lag + 1):
        if lag >= length:
            break
        num = np.einsum("ij,ij->i", x0[:, :-lag], x0[:, lag:])
        np.divide(num, denom, out=acf[:, lag], where=safe)
    return acf


def _canonical_block(X: np.ndarray) -> dict[str, np.ndarray]:
    n_rows, length = X.shape
    diffs = np.diff(X, axis=1) if length > 1 else np.zeros((n_rows, 1), dtype=X.dtype)
    means = X.mean(axis=1)
    stds = X.std(axis=1)
    q25, q50, q75 = np.percentile(X, [25, 50, 75], axis=1)
    if length > 1:
        centered = X - np.median(X, axis=1, keepdims=True)
        crossings = np.mean(
            np.sign(centered[:, :-1]) != np.sign(centered[:, 1:]), axis=1
        )
    else:
        crossings = np.zeros(n_rows)
    gate = stds > 0
    return {
        "canon_mean": means,
        "canon_std": stds,
        "canon_skew": np.where(gate, sps.skew(X, axis=1), 0.0),
        "canon_kurtosis": np.where(gate, sps.kurtosis(X, axis=1), 0.0),
        "canon_median": q50,
        "canon_iqr": q75 - q25,
        "canon_range": X.max(axis=1) - X.min(axis=1),
        "canon_cv": stds / (np.abs(means) + 1e-12),
        "canon_above_mean_ratio": (X > means[:, None]).mean(axis=1),
        "canon_abs_diff_mean": np.abs(diffs).mean(axis=1),
        "canon_diff_std": diffs.std(axis=1),
        "canon_median_crossings": crossings,
        "canon_energy": (X**2).mean(axis=1),
    }


def _rs_block(segment: np.ndarray) -> np.ndarray:
    """Rescaled range R/S per row (0.0 when too short or constant)."""
    n_rows, length = segment.shape
    if length < 4:
        return np.zeros(n_rows)
    dev = np.cumsum(segment - segment.mean(axis=1, keepdims=True), axis=1)
    spread = dev.max(axis=1) - dev.min(axis=1)
    scale = segment.std(axis=1)
    return np.divide(
        spread, scale, out=np.zeros(n_rows, dtype=np.float64), where=scale > 0
    )


def _rs_ratio_block(X: np.ndarray) -> np.ndarray:
    n_rows, length = X.shape
    full = _rs_block(X)
    half = (_rs_block(X[:, : length // 2]) + _rs_block(X[:, length // 2 :])) / 2
    ok = (full > 0) & (half > 0)
    ratio = np.ones(n_rows)
    np.divide(full, half, out=ratio, where=ok)
    out = np.zeros(n_rows)
    np.log2(ratio, out=out, where=ok)
    return out


def _dependency_block(X: np.ndarray) -> dict[str, np.ndarray]:
    n_rows, length = X.shape
    x0 = X - X.mean(axis=1, keepdims=True)
    denom = np.einsum("ij,ij->i", x0, x0)
    fz_max_lag = min(length // 2, 128) if length > 4 else length - 1
    acf = _acf_matrix(x0, denom, max(20, fz_max_lag - 1))

    feats: dict[str, np.ndarray] = {}
    lags = (1, 2, 3, 5, 10, 20)
    for lag in lags:
        feats[f"dep_acf_lag{lag}"] = acf[:, lag]
    # First zero crossing: first lag where the ACF drops from >0 to <=0.
    first_zero = np.zeros(n_rows)
    if fz_max_lag > 1:
        cur = acf[:, 1:fz_max_lag]
        prev = np.concatenate([np.ones((n_rows, 1), dtype=cur.dtype), cur[:, :-1]], axis=1)
        cond = (prev > 0) & (cur <= 0)
        hit = cond.any(axis=1)
        first_zero = np.where(hit, (cond.argmax(axis=1) + 1) / fz_max_lag, 0.0)
    feats["dep_acf_first_zero"] = first_zero
    upper = min(11, length)
    feats["dep_acf_energy10"] = (
        (acf[:, 1:upper] ** 2).sum(axis=1) if upper > 1 else np.zeros(n_rows)
    )
    r1, r2 = acf[:, 1], acf[:, 2]
    ok = np.abs(r1) < 1
    safe_denom = np.where(ok, 1 - r1**2, 1.0)
    feats["dep_pacf_lag2"] = np.where(ok, (r2 - r1**2) / safe_denom, 0.0)
    # Nonlinear dependence: lag-1 ACF of the squared centered values.
    sq0 = x0**2
    sq0 = sq0 - sq0.mean(axis=1, keepdims=True)
    sq_denom = np.einsum("ij,ij->i", sq0, sq0)
    if length > 1:
        sq_num = np.einsum("ij,ij->i", sq0[:, :-1], sq0[:, 1:])
        feats["dep_acf_sq_lag1"] = np.divide(
            sq_num, sq_denom, out=np.zeros(n_rows), where=sq_denom != 0
        )
    else:
        feats["dep_acf_sq_lag1"] = np.zeros(n_rows)
    # Spearman rank ACF: Pearson correlation of the rank transforms.
    if length > 2:
        ra = sps.rankdata(X[:, :-1], axis=1)
        rb = sps.rankdata(X[:, 1:], axis=1)
        ra = ra - ra.mean(axis=1, keepdims=True)
        rb = rb - rb.mean(axis=1, keepdims=True)
        cov = np.einsum("ij,ij->i", ra, rb)
        norm = np.sqrt(
            np.einsum("ij,ij->i", ra, ra) * np.einsum("ij,ij->i", rb, rb)
        )
        rho = np.divide(cov, norm, out=np.full(n_rows, np.nan), where=norm != 0)
        feats["dep_rank_acf_lag1"] = np.where(X.std(axis=1) > 0, rho, 0.0)
    else:
        feats["dep_rank_acf_lag1"] = np.zeros(n_rows)
    diffs = np.diff(X, axis=1) if length > 1 else np.zeros((n_rows, 1), dtype=X.dtype)
    ti_denom = (diffs**2).mean(axis=1) ** 1.5 + 1e-12
    feats["dep_time_irreversibility"] = (diffs**3).mean(axis=1) / ti_denom
    feats["dep_rs_ratio"] = _rs_ratio_block(X)
    feats["dep_acf_mean_abs"] = np.abs(
        np.stack([acf[:, lag] for lag in lags], axis=1)
    ).mean(axis=1)
    return feats


def _seasonality_block(X: np.ndarray) -> np.ndarray:
    n_rows, length = X.shape
    var = X.var(axis=1)
    best = np.zeros(n_rows, dtype=X.dtype)
    for period in (4, 7, 12, 24, 50, 96):
        if period * 2 >= length:
            continue
        seasonal_diff = X[:, period:] - X[:, :-period]
        best = np.maximum(best, 1.0 - seasonal_diff.var(axis=1) / (2 * var))
    return np.where(var > 0, np.clip(best, 0.0, 1.0), 0.0)


def _stationarity_block(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    n_rows, length = X.shape
    k = max(2, min(8, length // 16))
    chunks = np.array_split(X, k, axis=1)
    means = np.stack([chunk.mean(axis=1) for chunk in chunks], axis=1)
    variances = np.stack([chunk.var(axis=1) for chunk in chunks], axis=1)
    scale = X.std(axis=1) + 1e-12
    return means.std(axis=1) / scale, variances.std(axis=1) / scale**2


def _level_shift_block(X: np.ndarray) -> np.ndarray:
    n_rows, length = X.shape
    w = max(4, length // 12)
    if length < 2 * w:
        return np.zeros(n_rows)
    starts = list(range(0, length - w, w))
    if len(starts) < 2:
        return np.zeros(n_rows)
    means = np.stack([X[:, i : i + w].mean(axis=1) for i in starts], axis=1)
    scale = X.std(axis=1) + 1e-12
    return np.abs(np.diff(means, axis=1)).max(axis=1) / scale


def _trend_block(X: np.ndarray, *, cache=None) -> dict[str, np.ndarray]:
    n_rows, length = X.shape
    stds = X.std(axis=1)
    t = np.arange(length, dtype=float)
    slope = np.zeros(n_rows)
    r2 = np.zeros(n_rows)
    resid = X - X.mean(axis=1, keepdims=True)
    if length > 2:
        # Fit per row with the exact scalar call: a multi-RHS lstsq differs
        # from single-RHS at ~1e-16, which is chaotic on exact-polynomial
        # rows (argmax over a numerically-zero residual spectrum).
        for i in np.flatnonzero(stds > 0):
            sl, ic = np.polyfit(t, X[i], 1)
            resid[i] = X[i] - (sl * t + ic)
            slope[i] = sl
            r2[i] = 1.0 - resid[i].var() / X[i].var()
    feats: dict[str, np.ndarray] = {
        "trend_slope": slope,
        "trend_r2": np.maximum(0.0, r2),
        "trend_resid_std": resid.std(axis=1),
    }
    detrended = resid - resid.mean(axis=1, keepdims=True)

    def _spectrum() -> np.ndarray:
        return np.abs(np.fft.rfft(detrended, axis=1)) ** 2

    key = ("stat_rfft_sq", length, X.dtype.str)
    spectrum = cache(key, _spectrum) if cache is not None else _spectrum()
    spectrum = spectrum[:, 1:]  # drop DC
    n_bins = spectrum.shape[1]
    spec_entropy = np.ones(n_rows)
    peak_freq = np.zeros(n_rows)
    peak_power = np.zeros(n_rows)
    centroid = np.zeros(n_rows)
    low = np.zeros(n_rows)
    if n_bins:
        total = spectrum.sum(axis=1)
        ok = total > 0
        if ok.any():
            p = spectrum[ok] / total[ok, None]
            spec_entropy[ok] = -(p * np.log(p + 1e-15)).sum(axis=1) / np.log(n_bins)
            peak_idx = np.argmax(spectrum[ok], axis=1)
            peak_freq[ok] = (peak_idx + 1) / length
            peak_power[ok] = p[np.arange(p.shape[0]), peak_idx]
            centroid[ok] = (np.arange(1, n_bins + 1) * p).sum(axis=1) / n_bins
            low[ok] = p[:, : max(1, n_bins // 10)].sum(axis=1)
    feats["trend_spectral_entropy"] = spec_entropy
    feats["trend_peak_freq"] = peak_freq
    feats["trend_peak_power"] = peak_power
    feats["trend_spectral_centroid"] = centroid
    feats["trend_lowfreq_power"] = low
    feats["trend_seasonality_strength"] = _seasonality_block(X)
    mean_drift, var_drift = _stationarity_block(X)
    feats["trend_stat_mean_drift"] = mean_drift
    feats["trend_stat_var_drift"] = var_drift
    feats["trend_level_shift"] = _level_shift_block(X)
    quad = np.zeros(n_rows)
    if length > 3:
        for i in np.flatnonzero(stds > 0):
            quad[i] = np.polyfit(t, X[i], 2)[0]
    feats["trend_curvature"] = quad
    return feats


def statistical_features_block(matrix, *, cache=None) -> dict[str, np.ndarray]:
    """All 40 statistical features over a stack of equal-length rows.

    ``matrix`` is ``(n_series, length)`` with no NaNs — interpolate before
    stacking (``SeriesBank`` does).  Returns ``{name: (n_series,) float64
    array}`` in :data:`STATISTICAL_FEATURE_NAMES` order; each column matches
    the scalar :func:`statistical_features` on the corresponding row.

    ``cache`` is an optional ``cache(key, builder)`` memo (pass
    ``SeriesBank.cached``) used to reuse the detrended periodogram across
    repeated extractions over the same bank.
    """
    X = np.asarray(matrix)
    if X.ndim != 2 or X.shape[0] == 0 or X.shape[1] == 0:
        raise ValidationError(
            "statistical_features_block expects a non-empty 2-D matrix"
        )
    if X.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        X = X.astype(np.float64)
    if not np.isfinite(X).all():
        raise ValidationError(
            "statistical_features_block expects finite rows; interpolate first"
        )
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        feats = _canonical_block(X)
        feats.update(_dependency_block(X))
        feats.update(_trend_block(X, cache=cache))
        return {name: _finite_rows(col) for name, col in feats.items()}
