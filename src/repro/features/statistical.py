"""Statistical feature extraction (Section V-B).

The paper concatenates features from TSFresh/Catch22/Kats-style extractors
and groups them into three coarse categories, reproduced here:

* **Canonical** — basic summary statistics of value distribution and change;
* **Dependencies** — autocorrelation structure at several lags, partial
  autocorrelations, and nonlinearity of dependence;
* **Trends** — seasonality, spectral shape, stationarity, and linear-trend
  diagnostics.

Every function accepts a :class:`~repro.timeseries.TimeSeries` or raw array;
missing values are linearly interpolated first (features must be computable
on faulty input — that is the whole point of the recommender).  Each function
returns an ordered ``dict[str, float]``; all values are finite.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.timeseries.series import TimeSeries


def _prepare(series) -> np.ndarray:
    """Coerce to a clean 1-D array (interpolate NaNs, drop non-finite)."""
    if isinstance(series, TimeSeries):
        if series.has_missing:
            series = series.interpolated()
        arr = series.values.astype(float)
    else:
        arr = np.asarray(series, dtype=float)
        if np.isnan(arr).any():
            arr = TimeSeries(arr).interpolated().values
    return arr


def _finite(value: float) -> float:
    """Map NaN/inf from degenerate inputs to 0.0 so vectors stay usable."""
    value = float(value)
    return value if np.isfinite(value) else 0.0


def _autocorrelation(x: np.ndarray, lag: int) -> float:
    n = x.shape[0]
    if lag >= n or lag < 1:
        return 0.0
    x0 = x - x.mean()
    denom = float(x0 @ x0)
    if denom == 0.0:
        return 0.0
    return float(x0[:-lag] @ x0[lag:] / denom)


def canonical_features(series) -> dict[str, float]:
    """Basic distributional and change statistics (13 features)."""
    x = _prepare(series)
    diffs = np.diff(x) if x.shape[0] > 1 else np.zeros(1)
    std = x.std()
    q25, q50, q75 = np.percentile(x, [25, 50, 75])
    span = x.max() - x.min()
    above = (x > x.mean()).mean()
    crossings = 0.0
    if x.shape[0] > 1:
        centered = x - np.median(x)
        crossings = float(np.mean(np.sign(centered[:-1]) != np.sign(centered[1:])))
    return {
        "canon_mean": _finite(x.mean()),
        "canon_std": _finite(std),
        "canon_skew": _finite(sps.skew(x)) if std > 0 else 0.0,
        "canon_kurtosis": _finite(sps.kurtosis(x)) if std > 0 else 0.0,
        "canon_median": _finite(q50),
        "canon_iqr": _finite(q75 - q25),
        "canon_range": _finite(span),
        "canon_cv": _finite(std / (abs(x.mean()) + 1e-12)),
        "canon_above_mean_ratio": _finite(above),
        "canon_abs_diff_mean": _finite(np.abs(diffs).mean()),
        "canon_diff_std": _finite(diffs.std()),
        "canon_median_crossings": _finite(crossings),
        "canon_energy": _finite((x**2).mean()),
    }


def dependency_features(series) -> dict[str, float]:
    """Autocorrelation structure (14 features)."""
    x = _prepare(series)
    n = x.shape[0]
    feats: dict[str, float] = {}
    lags = (1, 2, 3, 5, 10, 20)
    acfs = []
    for lag in lags:
        value = _autocorrelation(x, lag)
        feats[f"dep_acf_lag{lag}"] = _finite(value)
        acfs.append(value)
    # First zero crossing of the ACF (a period proxy).
    first_zero = 0.0
    max_lag = min(n // 2, 128) if n > 4 else n - 1
    prev = 1.0
    for lag in range(1, max_lag):
        cur = _autocorrelation(x, lag)
        if prev > 0 >= cur:
            first_zero = lag / max_lag
            break
        prev = cur
    feats["dep_acf_first_zero"] = _finite(first_zero)
    # Sum of squared ACF over first 10 lags: overall linear memory.
    feats["dep_acf_energy10"] = _finite(
        sum(_autocorrelation(x, lag) ** 2 for lag in range(1, min(11, n)))
    )
    # Partial autocorrelation at lag 2 via Durbin-Levinson.
    r1, r2 = _autocorrelation(x, 1), _autocorrelation(x, 2)
    pacf2 = (r2 - r1**2) / (1 - r1**2) if abs(r1) < 1 else 0.0
    feats["dep_pacf_lag2"] = _finite(pacf2)
    # Nonlinear dependence: autocorrelation of squared (centered) values.
    xc = x - x.mean()
    feats["dep_acf_sq_lag1"] = _finite(_autocorrelation(xc**2, 1))
    # Mutual-information proxy: correlation between x_t and x_{t+1} ranks.
    if n > 2 and x.std() > 0:
        rho = sps.spearmanr(x[:-1], x[1:]).statistic
    else:
        rho = 0.0
    feats["dep_rank_acf_lag1"] = _finite(rho)
    # Time irreversibility (third-order moment of diffs).
    diffs = np.diff(x) if n > 1 else np.zeros(1)
    denom = (diffs**2).mean() ** 1.5 + 1e-12
    feats["dep_time_irreversibility"] = _finite((diffs**3).mean() / denom)
    # Hurst-style rescaled-range proxy on two scales.
    feats["dep_rs_ratio"] = _finite(_rescaled_range_ratio(x))
    feats["dep_acf_mean_abs"] = _finite(float(np.mean(np.abs(acfs))))
    return feats


def _rescaled_range_ratio(x: np.ndarray) -> float:
    """log2(R/S at full length / R/S at half length) — long-memory proxy."""
    def rs(seg: np.ndarray) -> float:
        if seg.shape[0] < 4:
            return 0.0
        dev = np.cumsum(seg - seg.mean())
        r = dev.max() - dev.min()
        s = seg.std()
        return r / s if s > 0 else 0.0

    full = rs(x)
    half = (rs(x[: x.shape[0] // 2]) + rs(x[x.shape[0] // 2 :])) / 2
    if half <= 0 or full <= 0:
        return 0.0
    return float(np.log2(full / half))


def trend_features(series) -> dict[str, float]:
    """Seasonality, spectrum, stationarity, and linear trend (13 features)."""
    x = _prepare(series)
    n = x.shape[0]
    feats: dict[str, float] = {}
    t = np.arange(n, dtype=float)
    # Linear trend fit.
    if n > 2 and x.std() > 0:
        slope, intercept = np.polyfit(t, x, 1)
        resid = x - (slope * t + intercept)
        r2 = 1.0 - resid.var() / x.var()
    else:
        slope, r2, resid = 0.0, 0.0, x - x.mean()
    feats["trend_slope"] = _finite(slope)
    feats["trend_r2"] = _finite(max(0.0, r2))
    feats["trend_resid_std"] = _finite(resid.std())
    # Spectral features from the periodogram of the detrended series.
    detrended = resid - resid.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    spectrum = spectrum[1:]  # drop DC
    if spectrum.size and spectrum.sum() > 0:
        p = spectrum / spectrum.sum()
        spec_entropy = float(-(p * np.log(p + 1e-15)).sum() / np.log(p.size))
        peak_idx = int(np.argmax(spectrum))
        peak_freq = (peak_idx + 1) / n
        peak_power = float(p[peak_idx])
        centroid = float((np.arange(1, p.size + 1) * p).sum() / p.size)
        low = p[: max(1, p.size // 10)].sum()
    else:
        spec_entropy, peak_freq, peak_power, centroid, low = 1.0, 0.0, 0.0, 0.0, 0.0
    feats["trend_spectral_entropy"] = _finite(spec_entropy)
    feats["trend_peak_freq"] = _finite(peak_freq)
    feats["trend_peak_power"] = _finite(peak_power)
    feats["trend_spectral_centroid"] = _finite(centroid)
    feats["trend_lowfreq_power"] = _finite(low)
    # Seasonality strength via best seasonal-difference variance reduction.
    feats["trend_seasonality_strength"] = _finite(_seasonality_strength(x))
    # Stationarity: variance of windowed means / windowed variances.
    feats["trend_stat_mean_drift"], feats["trend_stat_var_drift"] = _stationarity(x)
    # Step-change detection: max jump of windowed means (perturbation proxy).
    feats["trend_level_shift"] = _finite(_level_shift(x))
    # Curvature (quadratic coefficient) of the global fit.
    if n > 3 and x.std() > 0:
        quad = np.polyfit(t, x, 2)[0]
    else:
        quad = 0.0
    feats["trend_curvature"] = _finite(quad)
    return feats


def _seasonality_strength(x: np.ndarray) -> float:
    n = x.shape[0]
    best = 0.0
    var = x.var()
    if var == 0:
        return 0.0
    for period in (4, 7, 12, 24, 50, 96):
        if period * 2 >= n:
            continue
        seasonal_diff = x[period:] - x[:-period]
        strength = 1.0 - seasonal_diff.var() / (2 * var)
        best = max(best, strength)
    return max(0.0, min(1.0, best))


def _stationarity(x: np.ndarray) -> tuple[float, float]:
    n = x.shape[0]
    k = max(2, min(8, n // 16))
    windows = np.array_split(x, k)
    means = np.array([w.mean() for w in windows])
    variances = np.array([w.var() for w in windows])
    scale = x.std() + 1e-12
    mean_drift = means.std() / scale
    var_drift = variances.std() / (scale**2)
    return _finite(mean_drift), _finite(var_drift)


def _level_shift(x: np.ndarray) -> float:
    n = x.shape[0]
    w = max(4, n // 12)
    if n < 2 * w:
        return 0.0
    means = np.array([x[i : i + w].mean() for i in range(0, n - w, w)])
    if means.size < 2:
        return 0.0
    scale = x.std() + 1e-12
    return float(np.abs(np.diff(means)).max() / scale)


def statistical_features(series) -> dict[str, float]:
    """All statistical features: canonical + dependencies + trends (40 total)."""
    feats = canonical_features(series)
    feats.update(dependency_features(series))
    feats.update(trend_features(series))
    return feats


#: Stable ordering of statistical feature names (probe a tiny series once).
STATISTICAL_FEATURE_NAMES: tuple[str, ...] = tuple(
    statistical_features(np.sin(np.linspace(0, 6.28, 64))).keys()
)
