"""FeatureExtractor facade: one call from series to feature vector.

ModelRace and the recommendation engine always go through this class so the
*same* extractor configuration is used at training and inference time
(steps 2 and 6 of Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.observability import get_metrics, get_tracer
from repro.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    statistical_features,
)
from repro.features.topological import (
    TOPOLOGICAL_FEATURE_NAMES,
    topological_features,
)
from repro.timeseries.series import TimeSeries


class FeatureExtractor:
    """Extract a fixed-order numeric feature vector from a (faulty) series.

    Parameters
    ----------
    use_statistical:
        Include the statistical feature families (canonical, dependencies,
        trends).
    use_topological:
        Include the persistence-diagram features.
    use_missing_pattern:
        Include the missing-pattern features (the paper's future-work
        extension; off by default to match the published system).
    embedding_dimension, embedding_delay:
        Parameters of the time-delay embedding for the topological features.

    At least one family must be enabled.  Feature order is stable across
    calls, exposed via :attr:`feature_names`.
    """

    def __init__(
        self,
        use_statistical: bool = True,
        use_topological: bool = True,
        use_missing_pattern: bool = False,
        embedding_dimension: int = 3,
        embedding_delay: int = 2,
    ):
        if not (use_statistical or use_topological or use_missing_pattern):
            raise ValidationError("at least one feature family must be enabled")
        self.use_statistical = bool(use_statistical)
        self.use_topological = bool(use_topological)
        self.use_missing_pattern = bool(use_missing_pattern)
        self.embedding_dimension = int(embedding_dimension)
        self.embedding_delay = int(embedding_delay)
        names: list[str] = []
        if self.use_statistical:
            names.extend(STATISTICAL_FEATURE_NAMES)
        if self.use_topological:
            names.extend(TOPOLOGICAL_FEATURE_NAMES)
        if self.use_missing_pattern:
            from repro.timeseries.patterns import MISSING_PATTERN_FEATURE_NAMES

            names.extend(MISSING_PATTERN_FEATURE_NAMES)
        self._names = tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the extracted features, in output order."""
        return self._names

    @property
    def n_features(self) -> int:
        """Dimensionality of the produced vectors."""
        return len(self._names)

    def extract(self, series) -> np.ndarray:
        """Extract the feature vector of one series (array or TimeSeries).

        Each enabled feature block is individually timed into the
        ``repro_features_block_seconds{block=...}`` histogram of the
        process metrics registry (a no-op unless a registry is
        installed), so the per-block latency breakdown the paper's
        inference-cost analysis needs is always available.
        """
        metrics = get_metrics()
        feats: dict[str, float] = {}
        if self.use_statistical:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "statistical"},
            ).time():
                feats.update(statistical_features(series))
        if self.use_topological:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "topological"},
            ).time():
                feats.update(
                    topological_features(
                        series,
                        dimension=self.embedding_dimension,
                        delay=self.embedding_delay,
                    )
                )
        if self.use_missing_pattern:
            from repro.timeseries.patterns import missing_pattern_features

            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "missing_pattern"},
            ).time():
                feats.update(missing_pattern_features(series))
        vector = np.array([feats[name] for name in self._names], dtype=float)
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def extract_many(self, series_list) -> np.ndarray:
        """Extract a feature matrix (n_series, n_features)."""
        if not len(series_list):
            raise ValidationError("series_list is empty")
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span(
            "features.extract_many",
            subsystem="features",
            n_series=len(series_list),
            n_features=self.n_features,
        ), metrics.histogram(
            "repro_features_extract_many_seconds",
            "Wall seconds per extract_many batch",
        ).time():
            matrix = np.vstack([self.extract(s) for s in series_list])
        metrics.counter(
            "repro_features_series_total",
            "Series pushed through feature extraction",
        ).inc(len(series_list))
        return matrix

    def __repr__(self) -> str:
        return (
            f"FeatureExtractor(statistical={self.use_statistical}, "
            f"topological={self.use_topological}, n_features={self.n_features})"
        )


def extract_features_matrix(series_list, extractor: FeatureExtractor | None = None):
    """Convenience wrapper: extract a feature matrix with a default extractor."""
    extractor = extractor or FeatureExtractor()
    return extractor.extract_many(series_list)
