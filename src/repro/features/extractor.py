"""FeatureExtractor facade: one call from series to feature vector.

ModelRace and the recommendation engine always go through this class so the
*same* extractor configuration is used at training and inference time
(steps 2 and 6 of Fig. 2).

``extract_many`` is a production hot path (every labeled series at training
time, every request at inference time), so it supports two accelerations
that compose:

* **Caching** — pass a :class:`~repro.parallel.FeatureCache` and each
  series is keyed by ``sha1(series content + extractor fingerprint)``;
  repeated series (within a batch or across calls/processes when the
  cache is disk-backed) are extracted exactly once and the cached vector
  is bit-identical to a fresh extraction.
* **Parallel fan-out** — pass a :class:`~repro.parallel.ParallelConfig`
  and the non-cached extractions are chunked across an
  :class:`~repro.parallel.ExecutionEngine` (thread or process backend),
  preserving row order.

With neither configured, the historical serial code path runs unchanged.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.exceptions import ValidationError
from repro.observability import get_metrics, get_tracer
from repro.parallel import ExecutionEngine, FeatureCache, ParallelConfig
from repro.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    statistical_features,
)
from repro.features.topological import (
    TOPOLOGICAL_FEATURE_NAMES,
    topological_features,
)
from repro.timeseries.series import TimeSeries


@functools.lru_cache(maxsize=8)
def _worker_extractor(config: tuple) -> "FeatureExtractor":
    """Per-process extractor cache for parallel workers."""
    return FeatureExtractor(**dict(config))


def _extract_worker(values: np.ndarray, *, config: tuple) -> np.ndarray:
    """Extract one series from its raw value array (picklable worker)."""
    return _worker_extractor(config).extract(values)


class FeatureExtractor:
    """Extract a fixed-order numeric feature vector from a (faulty) series.

    Parameters
    ----------
    use_statistical:
        Include the statistical feature families (canonical, dependencies,
        trends).
    use_topological:
        Include the persistence-diagram features.
    use_missing_pattern:
        Include the missing-pattern features (the paper's future-work
        extension; off by default to match the published system).
    embedding_dimension, embedding_delay:
        Parameters of the time-delay embedding for the topological features.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig`; ``extract_many``
        fans per-series extraction out across its workers.  ``None``
        keeps the serial path.
    cache:
        Optional :class:`~repro.parallel.FeatureCache`; series content
        hashes are looked up before extraction and stored after.

    At least one family must be enabled.  Feature order is stable across
    calls, exposed via :attr:`feature_names`.
    """

    def __init__(
        self,
        use_statistical: bool = True,
        use_topological: bool = True,
        use_missing_pattern: bool = False,
        embedding_dimension: int = 3,
        embedding_delay: int = 2,
        parallel: ParallelConfig | None = None,
        cache: FeatureCache | None = None,
    ):
        if not (use_statistical or use_topological or use_missing_pattern):
            raise ValidationError("at least one feature family must be enabled")
        self.use_statistical = bool(use_statistical)
        self.use_topological = bool(use_topological)
        self.use_missing_pattern = bool(use_missing_pattern)
        self.embedding_dimension = int(embedding_dimension)
        self.embedding_delay = int(embedding_delay)
        self.parallel = parallel
        self.cache = cache
        names: list[str] = []
        if self.use_statistical:
            names.extend(STATISTICAL_FEATURE_NAMES)
        if self.use_topological:
            names.extend(TOPOLOGICAL_FEATURE_NAMES)
        if self.use_missing_pattern:
            from repro.timeseries.patterns import MISSING_PATTERN_FEATURE_NAMES

            names.extend(MISSING_PATTERN_FEATURE_NAMES)
        self._names = tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the extracted features, in output order."""
        return self._names

    @property
    def n_features(self) -> int:
        """Dimensionality of the produced vectors."""
        return len(self._names)

    @property
    def fingerprint(self) -> tuple:
        """Cache-key component identifying this extractor configuration.

        Two extractors with equal fingerprints produce bit-identical
        vectors for identical input, so cached vectors are shareable
        across instances (and across processes via a disk-backed cache).
        """
        return (
            "fx1",  # bump when extraction semantics change
            self.use_statistical,
            self.use_topological,
            self.use_missing_pattern,
            self.embedding_dimension,
            self.embedding_delay,
        )

    def _worker_config(self) -> tuple:
        """Hashable kwargs for reconstructing this extractor in workers."""
        return (
            ("use_statistical", self.use_statistical),
            ("use_topological", self.use_topological),
            ("use_missing_pattern", self.use_missing_pattern),
            ("embedding_dimension", self.embedding_dimension),
            ("embedding_delay", self.embedding_delay),
        )

    def extract(self, series) -> np.ndarray:
        """Extract the feature vector of one series (array or TimeSeries).

        Each enabled feature block is individually timed into the
        ``repro_features_block_seconds{block=...}`` histogram of the
        process metrics registry (a no-op unless a registry is
        installed), so the per-block latency breakdown the paper's
        inference-cost analysis needs is always available.
        """
        metrics = get_metrics()
        feats: dict[str, float] = {}
        if self.use_statistical:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "statistical"},
            ).time():
                feats.update(statistical_features(series))
        if self.use_topological:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "topological"},
            ).time():
                feats.update(
                    topological_features(
                        series,
                        dimension=self.embedding_dimension,
                        delay=self.embedding_delay,
                    )
                )
        if self.use_missing_pattern:
            from repro.timeseries.patterns import missing_pattern_features

            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "missing_pattern"},
            ).time():
                feats.update(missing_pattern_features(series))
        vector = np.array([feats[name] for name in self._names], dtype=float)
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def extract_many(self, series_list) -> np.ndarray:
        """Extract a feature matrix (n_series, n_features).

        With a :attr:`cache`, every series is first looked up by content
        hash and duplicate series within the batch are extracted only
        once.  With a :attr:`parallel` config, the remaining extractions
        fan out across an :class:`~repro.parallel.ExecutionEngine`.  Row
        order always matches ``series_list``, and the produced vectors
        are bit-identical to the serial, uncached path.
        """
        if not len(series_list):
            raise ValidationError("series_list is empty")
        tracer = get_tracer()
        metrics = get_metrics()
        span = tracer.span(
            "features.extract_many",
            subsystem="features",
            n_series=len(series_list),
            n_features=self.n_features,
        )
        with span, metrics.histogram(
            "repro_features_extract_many_seconds",
            "Wall seconds per extract_many batch",
        ).time():
            if self.cache is None and self.parallel is None:
                # Historical serial path, byte-for-byte.
                matrix = np.vstack([self.extract(s) for s in series_list])
            else:
                matrix = self._extract_many_accelerated(series_list, span)
        metrics.counter(
            "repro_features_series_total",
            "Series pushed through feature extraction",
        ).inc(len(series_list))
        return matrix

    def _extract_many_accelerated(self, series_list, span) -> np.ndarray:
        """Cache-deduplicated, optionally parallel batch extraction."""
        arrays = [
            np.ascontiguousarray(
                s.values if isinstance(s, TimeSeries) else np.asarray(s),
                dtype=float,
            )
            for s in series_list
        ]
        n = len(arrays)
        rows: list[np.ndarray | None] = [None] * n
        # 1) Resolve cache hits and dedupe identical series in-batch.
        todo_by_key: dict[str, list[int]] = {}
        if self.cache is not None:
            fingerprint = self.fingerprint
            for i, arr in enumerate(arrays):
                key = self.cache.key(arr, fingerprint)
                hit = self.cache.get(key)
                if hit is not None:
                    rows[i] = hit
                else:
                    todo_by_key.setdefault(key, []).append(i)
            work_indices = [indices[0] for indices in todo_by_key.values()]
        else:
            work_indices = list(range(n))
        # 2) Extract the remaining unique series (possibly in parallel).
        if work_indices:
            task = functools.partial(
                _extract_worker, config=self._worker_config()
            )
            with ExecutionEngine(self.parallel) as engine:
                vectors = engine.map(
                    task,
                    [arrays[i] for i in work_indices],
                    label="features.extract_batch",
                )
        else:
            vectors = []
        # 3) Assemble rows in input order; store fresh vectors.
        if self.cache is not None:
            for (key, indices), vector in zip(todo_by_key.items(), vectors):
                self.cache.put(key, vector)
                for i in indices:
                    rows[i] = np.array(vector, dtype=float, copy=True)
            span.set_tag("cache_hits", n - sum(len(v) for v in todo_by_key.values()))
            span.set_tag("cache_misses", len(todo_by_key))
        else:
            for i, vector in zip(work_indices, vectors):
                rows[i] = vector
        return np.vstack(rows)

    def __repr__(self) -> str:
        return (
            f"FeatureExtractor(statistical={self.use_statistical}, "
            f"topological={self.use_topological}, n_features={self.n_features})"
        )


def extract_features_matrix(series_list, extractor: FeatureExtractor | None = None):
    """Convenience wrapper: extract a feature matrix with a default extractor."""
    extractor = extractor or FeatureExtractor()
    return extractor.extract_many(series_list)
