"""FeatureExtractor facade: one call from series to feature vector.

ModelRace and the recommendation engine always go through this class so the
*same* extractor configuration is used at training and inference time
(steps 2 and 6 of Fig. 2).

``extract_many`` is a production hot path (every labeled series at training
time, every request at inference time), so it supports two accelerations
that compose:

* **Caching** — pass a :class:`~repro.parallel.FeatureCache` and each
  series is keyed by ``sha1(series content + extractor fingerprint)``;
  repeated series (within a batch or across calls/processes when the
  cache is disk-backed) are extracted exactly once and the cached vector
  is bit-identical to a fresh extraction.
* **Parallel fan-out** — pass a :class:`~repro.parallel.ParallelConfig`
  and the non-cached extractions are chunked across an
  :class:`~repro.parallel.ExecutionEngine` (thread or process backend),
  preserving row order.

With neither configured, the historical serial code path runs unchanged.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.exceptions import ValidationError
from repro.observability import get_metrics, get_tracer
from repro.observability.resources import get_accounting
from repro.parallel import ExecutionEngine, FeatureCache, ParallelConfig
from repro.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    _prepare,
    statistical_features,
    statistical_features_block,
)
from repro.features.topological import (
    TOPOLOGICAL_FEATURE_NAMES,
    topological_features,
    topological_features_block,
)
from repro.timeseries.batch import SeriesBank
from repro.timeseries.series import TimeSeries


@functools.lru_cache(maxsize=8)
def _worker_extractor(config: tuple) -> "FeatureExtractor":
    """Per-process extractor cache for parallel workers."""
    return FeatureExtractor(**dict(config))


def _extract_worker(values: np.ndarray, *, config: tuple) -> np.ndarray:
    """Extract one series from its raw value array (picklable worker)."""
    return _worker_extractor(config).extract(values)


def _extract_row_worker(index: int, *, config: tuple, matrix: np.ndarray) -> np.ndarray:
    """Extract one row of a shared corpus matrix (picklable worker).

    ``matrix`` is bound by ``ExecutionEngine.map(shared=...)`` — passed
    directly on the serial/thread backends, attached zero-copy from a
    shared-memory segment on the process backend — so each task pickles
    only the integer row index instead of the row data.
    """
    return _worker_extractor(config).extract(matrix[index])


class FeatureExtractor:
    """Extract a fixed-order numeric feature vector from a (faulty) series.

    Parameters
    ----------
    use_statistical:
        Include the statistical feature families (canonical, dependencies,
        trends).
    use_topological:
        Include the persistence-diagram features.
    use_missing_pattern:
        Include the missing-pattern features (the paper's future-work
        extension; off by default to match the published system).
    embedding_dimension, embedding_delay:
        Parameters of the time-delay embedding for the topological features.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig`; ``extract_many``
        fans per-series extraction out across its workers.  ``None``
        keeps the serial path.
    cache:
        Optional :class:`~repro.parallel.FeatureCache`; series content
        hashes are looked up before extraction and stored after.
    compute_dtype:
        Dtype of the *blockwise* kernels (``"float64"`` default, or
        ``"float32"``).  Float32 halves the block working set at a small
        accuracy cost; feature vectors are always accumulated and
        returned as float64.  The scalar per-series path is unaffected.

    At least one family must be enabled.  Feature order is stable across
    calls, exposed via :attr:`feature_names`.
    """

    def __init__(
        self,
        use_statistical: bool = True,
        use_topological: bool = True,
        use_missing_pattern: bool = False,
        embedding_dimension: int = 3,
        embedding_delay: int = 2,
        parallel: ParallelConfig | None = None,
        cache: FeatureCache | None = None,
        compute_dtype: str = "float64",
    ):
        if not (use_statistical or use_topological or use_missing_pattern):
            raise ValidationError("at least one feature family must be enabled")
        if compute_dtype not in ("float64", "float32"):
            raise ValidationError(
                f"compute_dtype must be 'float64' or 'float32', got {compute_dtype!r}"
            )
        self.use_statistical = bool(use_statistical)
        self.use_topological = bool(use_topological)
        self.use_missing_pattern = bool(use_missing_pattern)
        self.embedding_dimension = int(embedding_dimension)
        self.embedding_delay = int(embedding_delay)
        self.parallel = parallel
        self.cache = cache
        self.compute_dtype = compute_dtype
        names: list[str] = []
        if self.use_statistical:
            names.extend(STATISTICAL_FEATURE_NAMES)
        if self.use_topological:
            names.extend(TOPOLOGICAL_FEATURE_NAMES)
        if self.use_missing_pattern:
            from repro.timeseries.patterns import MISSING_PATTERN_FEATURE_NAMES

            names.extend(MISSING_PATTERN_FEATURE_NAMES)
        self._names = tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the extracted features, in output order."""
        return self._names

    @property
    def n_features(self) -> int:
        """Dimensionality of the produced vectors."""
        return len(self._names)

    @property
    def fingerprint(self) -> tuple:
        """Cache-key component identifying this extractor configuration.

        Two extractors with equal fingerprints produce bit-identical
        vectors for identical input, so cached vectors are shareable
        across instances (and across processes via a disk-backed cache).
        """
        base = (
            "fx1",  # bump when extraction semantics change
            self.use_statistical,
            self.use_topological,
            self.use_missing_pattern,
            self.embedding_dimension,
            self.embedding_delay,
        )
        # Only non-default compute dtypes extend the key, so historical
        # float64 cache entries stay valid.
        if self.compute_dtype != "float64":
            return base + (("compute_dtype", self.compute_dtype),)
        return base

    def _worker_config(self) -> tuple:
        """Hashable kwargs for reconstructing this extractor in workers."""
        return (
            ("use_statistical", self.use_statistical),
            ("use_topological", self.use_topological),
            ("use_missing_pattern", self.use_missing_pattern),
            ("embedding_dimension", self.embedding_dimension),
            ("embedding_delay", self.embedding_delay),
            ("compute_dtype", self.compute_dtype),
        )

    def extract(self, series) -> np.ndarray:
        """Extract the feature vector of one series (array or TimeSeries).

        Each enabled feature block is individually timed into the
        ``repro_features_block_seconds{block=...}`` histogram of the
        process metrics registry (a no-op unless a registry is
        installed), so the per-block latency breakdown the paper's
        inference-cost analysis needs is always available.
        """
        metrics = get_metrics()
        feats: dict[str, float] = {}
        if self.use_statistical:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "statistical"},
            ).time():
                feats.update(statistical_features(series))
        if self.use_topological:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "topological"},
            ).time():
                feats.update(
                    topological_features(
                        series,
                        dimension=self.embedding_dimension,
                        delay=self.embedding_delay,
                    )
                )
        if self.use_missing_pattern:
            from repro.timeseries.patterns import missing_pattern_features

            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "missing_pattern"},
            ).time():
                feats.update(missing_pattern_features(series))
        vector = np.array([feats[name] for name in self._names], dtype=float)
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def extract_block(
        self, matrix, *, bank: SeriesBank | None = None
    ) -> np.ndarray:
        """Feature matrix of pre-stacked equal-length rows via block kernels.

        ``matrix`` is an ``(n_series, length)`` NaN-free float matrix (rows
        already interpolated — a :attr:`SeriesBank.raw` qualifies).  Every
        feature is computed as a column-wise reduction over the whole
        stack, matching per-row :meth:`extract` to ~1e-9 (exactly, for the
        topological block).  Pass ``bank`` to memoize reusable derived
        arrays (the detrended periodogram) in the bank's :meth:`cached
        <repro.timeseries.batch.SeriesBank.cached>` store across repeated
        extractions.

        Blocks run in :attr:`compute_dtype`; the returned matrix is always
        float64.  Missing-pattern features need per-series NaN masks and
        are not supported here.
        """
        if self.use_missing_pattern:
            raise ValidationError(
                "missing-pattern features need per-series NaN masks; "
                "block extraction covers statistical/topological only"
            )
        X = np.ascontiguousarray(matrix, dtype=np.dtype(self.compute_dtype))
        metrics = get_metrics()
        cols: dict[str, np.ndarray] = {}
        if self.use_statistical:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "statistical"},
            ).time():
                cols.update(
                    statistical_features_block(
                        X, cache=bank.cached if bank is not None else None
                    )
                )
        if self.use_topological:
            with metrics.histogram(
                "repro_features_block_seconds",
                "Per-feature-block extraction wall seconds",
                labels={"block": "topological"},
            ).time():
                cols.update(
                    topological_features_block(
                        X,
                        dimension=self.embedding_dimension,
                        delay=self.embedding_delay,
                    )
                )
        out = np.empty((X.shape[0], self.n_features), dtype=float)
        for col_idx, name in enumerate(self._names):
            out[:, col_idx] = cols[name]
        get_accounting().record_kernel(
            "extract_block",
            bytes_moved=X.nbytes + out.nbytes,
            chunks=len(cols),
            scratch_allocations=1,
        )
        return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)

    def extract_many(self, series_list, *, batched: bool = False) -> np.ndarray:
        """Extract a feature matrix (n_series, n_features).

        ``series_list`` may also be a prepared
        :class:`~repro.timeseries.batch.SeriesBank`, in which case the
        blockwise kernels run over its (already cleaned, truncated) rows
        and derived arrays are memoized on the bank.  For a plain list,
        ``batched=True`` groups equal-length series and pushes each group
        through :meth:`extract_block` (ignored when missing-pattern
        features are enabled, which need per-series handling).

        With a :attr:`cache`, every series is first looked up by content
        hash and duplicate series within the batch are extracted only
        once.  With a :attr:`parallel` config, the remaining extractions
        fan out across an :class:`~repro.parallel.ExecutionEngine`.  Row
        order always matches ``series_list``, and the produced vectors
        are bit-identical to the serial, uncached path (to ~1e-9 on the
        blockwise paths).
        """
        bank = series_list if isinstance(series_list, SeriesBank) else None
        n_series = bank.n if bank is not None else len(series_list)
        if not n_series:
            raise ValidationError("series_list is empty")
        tracer = get_tracer()
        metrics = get_metrics()
        span = tracer.span(
            "features.extract_many",
            subsystem="features",
            n_series=n_series,
            n_features=self.n_features,
        )
        with span, metrics.histogram(
            "repro_features_extract_many_seconds",
            "Wall seconds per extract_many batch",
        ).time():
            if bank is not None and bank.on_disk:
                # Out-of-core: stream scratch-cap-sized row blocks off
                # the memmap and drop their pages after each pass, so
                # peak RSS tracks the block size, not the corpus.  The
                # per-row features are row-independent, so blockwise
                # results match the one-shot call exactly; the bank's
                # derived-array memo is skipped (it would pin
                # corpus-sized spectra in RAM).
                span.set_tag("mode", "bank-outofcore")
                from repro.timeseries.batch import DEFAULT_BLOCK_BYTES

                rows = max(
                    1, int(DEFAULT_BLOCK_BYTES // max(1, bank.length * 24))
                )
                matrix = np.empty((bank.n, self.n_features), dtype=float)
                for start in range(0, bank.n, rows):
                    stop = min(bank.n, start + rows)
                    matrix[start:stop] = self.extract_block(
                        bank.raw[start:stop]
                    )
                    bank.release_pages()
                span.set_tag("block_rows", rows)
            elif bank is not None:
                span.set_tag("mode", "bank")
                matrix = self.extract_block(bank.raw, bank=bank)
            elif batched and not self.use_missing_pattern:
                span.set_tag("mode", "batched")
                matrix = self._extract_block_grouped(series_list, span)
            elif self.cache is None and self.parallel is None:
                # Historical serial path, byte-for-byte.
                matrix = np.vstack([self.extract(s) for s in series_list])
            else:
                matrix = self._extract_many_accelerated(series_list, span)
        metrics.counter(
            "repro_features_series_total",
            "Series pushed through feature extraction",
        ).inc(n_series)
        return matrix

    def _extract_block_grouped(self, series_list, span) -> np.ndarray:
        """Blockwise extraction of a heterogeneous list, grouped by length."""
        arrays = [_prepare(s) for s in series_list]
        groups: dict[int, list[int]] = {}
        for i, arr in enumerate(arrays):
            groups.setdefault(arr.shape[0], []).append(i)
        out = np.empty((len(arrays), self.n_features), dtype=float)
        for indices in groups.values():
            stacked = np.vstack([arrays[i] for i in indices])
            if np.isfinite(stacked).all():
                out[indices] = self.extract_block(stacked)
            else:
                # Non-finite rows (inf survives interpolation) keep the
                # scalar path, whose _finite guards define the semantics.
                for i in indices:
                    out[i] = self.extract(arrays[i])
        span.set_tag("block_groups", len(groups))
        return out

    def _extract_many_accelerated(self, series_list, span) -> np.ndarray:
        """Cache-deduplicated, optionally parallel batch extraction."""
        arrays = [
            np.ascontiguousarray(
                s.values if isinstance(s, TimeSeries) else np.asarray(s),
                dtype=float,
            )
            for s in series_list
        ]
        n = len(arrays)
        rows: list[np.ndarray | None] = [None] * n
        # 1) Resolve cache hits and dedupe identical series in-batch.
        todo_by_key: dict[str, list[int]] = {}
        if self.cache is not None:
            fingerprint = self.fingerprint
            for i, arr in enumerate(arrays):
                key = self.cache.key(arr, fingerprint)
                hit = self.cache.get(key)
                if hit is not None:
                    rows[i] = hit
                else:
                    todo_by_key.setdefault(key, []).append(i)
            work_indices = [indices[0] for indices in todo_by_key.values()]
        else:
            work_indices = list(range(n))
        # 2) Extract the remaining unique series (possibly in parallel).
        if work_indices:
            config = self._worker_config()
            lengths = {arrays[i].shape[0] for i in work_indices}
            with ExecutionEngine(self.parallel) as engine:
                if self.parallel is not None and len(lengths) == 1 and len(work_indices) > 1:
                    # Equal-length corpus: ship one shared matrix instead
                    # of pickling every row (zero-copy on the process
                    # backend via a shared-memory segment).
                    stacked = np.ascontiguousarray(
                        np.vstack([arrays[i] for i in work_indices])
                    )
                    vectors = engine.map(
                        functools.partial(_extract_row_worker, config=config),
                        list(range(len(work_indices))),
                        label="features.extract_batch",
                        shared={"matrix": stacked},
                    )
                else:
                    vectors = engine.map(
                        functools.partial(_extract_worker, config=config),
                        [arrays[i] for i in work_indices],
                        label="features.extract_batch",
                    )
        else:
            vectors = []
        # 3) Assemble rows in input order; store fresh vectors.
        if self.cache is not None:
            for (key, indices), vector in zip(todo_by_key.items(), vectors):
                self.cache.put(key, vector)
                for i in indices:
                    rows[i] = np.array(vector, dtype=float, copy=True)
            span.set_tag("cache_hits", n - sum(len(v) for v in todo_by_key.values()))
            span.set_tag("cache_misses", len(todo_by_key))
        else:
            for i, vector in zip(work_indices, vectors):
                rows[i] = vector
        return np.vstack(rows)

    def __repr__(self) -> str:
        return (
            f"FeatureExtractor(statistical={self.use_statistical}, "
            f"topological={self.use_topological}, n_features={self.n_features})"
        )


def extract_features_matrix(series_list, extractor: FeatureExtractor | None = None):
    """Convenience wrapper: extract a feature matrix with a default extractor."""
    extractor = extractor or FeatureExtractor()
    return extractor.extract_many(series_list)
