"""Feature extraction for imputation-algorithm recommendation (Section V-B)."""

from repro.features.extractor import FeatureExtractor, extract_features_matrix
from repro.features.statistical import (
    canonical_features,
    dependency_features,
    trend_features,
    statistical_features,
    STATISTICAL_FEATURE_NAMES,
)
from repro.features.topological import (
    delay_embedding,
    persistence_diagram,
    topological_features,
    TOPOLOGICAL_FEATURE_NAMES,
)
from repro.features.scaling import (
    BaseScaler,
    IdentityScaler,
    StandardScaler,
    MinMaxScaler,
    RobustScaler,
    MaxAbsScaler,
    NormalizerScaler,
    QuantileScaler,
    PowerScaler,
    PCAScaler,
    SCALER_REGISTRY,
    available_scalers,
    get_scaler,
    scaler_search_space,
)

__all__ = [
    "FeatureExtractor",
    "extract_features_matrix",
    "canonical_features",
    "dependency_features",
    "trend_features",
    "statistical_features",
    "STATISTICAL_FEATURE_NAMES",
    "delay_embedding",
    "persistence_diagram",
    "topological_features",
    "TOPOLOGICAL_FEATURE_NAMES",
    "BaseScaler",
    "IdentityScaler",
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
    "MaxAbsScaler",
    "NormalizerScaler",
    "QuantileScaler",
    "PowerScaler",
    "PCAScaler",
    "SCALER_REGISTRY",
    "available_scalers",
    "get_scaler",
    "scaler_search_space",
]
