"""Feature scaler zoo (the "scaler" leg of a pipeline).

A pipeline is <classifier, hyperparameters, feature scaler> (Section V-A);
the paper's search space includes "60 different feature scaling options".
This module provides nine scaler families with parameterized variants and a
:func:`scaler_search_space` enumerating >= 60 concrete configurations.

All scalers implement ``fit`` / ``transform`` / ``fit_transform`` on 2-D
feature matrices and handle degenerate columns (zero variance) gracefully.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError, RegistryError, ValidationError
from repro.utils.validation import check_2d

_EPS = 1e-12


class BaseScaler(ABC):
    """Abstract scaler with the fit/transform contract."""

    #: Registry key; subclasses must override.
    name: str = "base"

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, X) -> "BaseScaler":
        """Learn scaling statistics from ``X`` (n_samples, n_features)."""
        X = check_2d(X, name="X", allow_nan=False)
        self._fit(X)
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned scaling; raises if not fitted."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        X = check_2d(X, name="X", allow_nan=False)
        out = self._transform(X)
        return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)

    def fit_transform(self, X) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    @abstractmethod
    def _fit(self, X: np.ndarray) -> None: ...

    @abstractmethod
    def _transform(self, X: np.ndarray) -> np.ndarray: ...

    def get_params(self) -> dict:
        """Public constructor parameters of this scaler instance."""
        return {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }

    def clone(self) -> "BaseScaler":
        """Fresh unfitted copy with the same parameters."""
        return type(self)(**self.get_params())

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class IdentityScaler(BaseScaler):
    """No-op scaler (the 'raw features' option)."""

    name = "identity"

    def _fit(self, X: np.ndarray) -> None:
        pass

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return X.copy()


class StandardScaler(BaseScaler):
    """Zero-mean, unit-variance per feature.

    Parameters
    ----------
    with_mean, with_std:
        Toggle centering / variance scaling independently.
    """

    name = "standard"

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        super().__init__()
        self.with_mean = bool(with_mean)
        self.with_std = bool(with_std)

    def _fit(self, X: np.ndarray) -> None:
        self._mean = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std < _EPS] = 1.0
            self._std = std
        else:
            self._std = np.ones(X.shape[1])

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std


class MinMaxScaler(BaseScaler):
    """Rescale each feature into [lo, hi].

    Parameters
    ----------
    feature_range:
        Target (lo, hi) interval.
    """

    name = "minmax"

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        super().__init__()
        lo, hi = feature_range
        if hi <= lo:
            raise ValidationError(f"invalid feature_range {feature_range}")
        self.feature_range = (float(lo), float(hi))

    def _fit(self, X: np.ndarray) -> None:
        self._min = X.min(axis=0)
        span = X.max(axis=0) - self._min
        span[span < _EPS] = 1.0
        self._span = span

    def _transform(self, X: np.ndarray) -> np.ndarray:
        lo, hi = self.feature_range
        return lo + (hi - lo) * (X - self._min) / self._span


class RobustScaler(BaseScaler):
    """Center by median, scale by an inter-quantile range.

    Parameters
    ----------
    quantile_range:
        (lower, upper) percentiles defining the scale.
    """

    name = "robust"

    def __init__(self, quantile_range: tuple[float, float] = (25.0, 75.0)):
        super().__init__()
        lo, hi = quantile_range
        if not 0 <= lo < hi <= 100:
            raise ValidationError(f"invalid quantile_range {quantile_range}")
        self.quantile_range = (float(lo), float(hi))

    def _fit(self, X: np.ndarray) -> None:
        lo, hi = self.quantile_range
        self._center = np.median(X, axis=0)
        q_lo, q_hi = np.percentile(X, [lo, hi], axis=0)
        scale = q_hi - q_lo
        scale[scale < _EPS] = 1.0
        self._scale = scale

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self._center) / self._scale


class MaxAbsScaler(BaseScaler):
    """Scale each feature by its maximum absolute value (preserves sign/zero)."""

    name = "maxabs"

    def _fit(self, X: np.ndarray) -> None:
        scale = np.abs(X).max(axis=0)
        scale[scale < _EPS] = 1.0
        self._scale = scale

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return X / self._scale


class NormalizerScaler(BaseScaler):
    """Normalize each *sample* vector to unit norm (L1, L2, or max).

    Parameters
    ----------
    norm:
        One of ``"l1"``, ``"l2"``, ``"max"``.
    """

    name = "normalizer"

    def __init__(self, norm: str = "l2"):
        super().__init__()
        if norm not in ("l1", "l2", "max"):
            raise ValidationError(f"norm must be l1/l2/max, got {norm!r}")
        self.norm = norm

    def _fit(self, X: np.ndarray) -> None:
        pass  # sample-wise; nothing to learn

    def _transform(self, X: np.ndarray) -> np.ndarray:
        if self.norm == "l1":
            denom = np.abs(X).sum(axis=1, keepdims=True)
        elif self.norm == "l2":
            denom = np.sqrt((X**2).sum(axis=1, keepdims=True))
        else:
            denom = np.abs(X).max(axis=1, keepdims=True)
        denom[denom < _EPS] = 1.0
        return X / denom


class QuantileScaler(BaseScaler):
    """Map each feature through its empirical CDF (rank-gaussian optional).

    Parameters
    ----------
    n_quantiles:
        Resolution of the learned CDF.
    output:
        ``"uniform"`` maps to [0, 1]; ``"normal"`` applies a probit on top.
    """

    name = "quantile"

    def __init__(self, n_quantiles: int = 64, output: str = "uniform"):
        super().__init__()
        if n_quantiles < 2:
            raise ValidationError(f"n_quantiles must be >= 2, got {n_quantiles}")
        if output not in ("uniform", "normal"):
            raise ValidationError(f"output must be uniform/normal, got {output!r}")
        self.n_quantiles = int(n_quantiles)
        self.output = output

    def _fit(self, X: np.ndarray) -> None:
        q = np.linspace(0.0, 100.0, min(self.n_quantiles, X.shape[0]))
        self._refs = np.percentile(X, q, axis=0)
        self._levels = q / 100.0

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = np.empty_like(X)
        for j in range(X.shape[1]):
            refs = self._refs[:, j]
            out[:, j] = np.interp(X[:, j], refs, self._levels)
        if self.output == "normal":
            from scipy.stats import norm

            out = norm.ppf(np.clip(out, 1e-6, 1 - 1e-6))
        return out


class PowerScaler(BaseScaler):
    """Variance-stabilizing transform: signed log or signed sqrt, then standardize.

    Parameters
    ----------
    method:
        ``"log"`` applies sign(x)*log1p(|x|); ``"sqrt"`` applies sign(x)*sqrt(|x|).
    """

    name = "power"

    def __init__(self, method: str = "log"):
        super().__init__()
        if method not in ("log", "sqrt"):
            raise ValidationError(f"method must be log/sqrt, got {method!r}")
        self.method = method

    def _apply(self, X: np.ndarray) -> np.ndarray:
        if self.method == "log":
            return np.sign(X) * np.log1p(np.abs(X))
        return np.sign(X) * np.sqrt(np.abs(X))

    def _fit(self, X: np.ndarray) -> None:
        T = self._apply(X)
        self._mean = T.mean(axis=0)
        std = T.std(axis=0)
        std[std < _EPS] = 1.0
        self._std = std

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (self._apply(X) - self._mean) / self._std


class PCAScaler(BaseScaler):
    """Standardize then project onto the top principal components.

    Parameters
    ----------
    n_components:
        Either an int (component count) or a float in (0, 1] (fraction of
        the feature count).
    whiten:
        Divide projections by the component singular values.
    """

    name = "pca"

    def __init__(self, n_components: float = 0.5, whiten: bool = False):
        super().__init__()
        if isinstance(n_components, float) and not 0 < n_components <= 1:
            raise ValidationError(
                f"fractional n_components must be in (0, 1], got {n_components}"
            )
        if isinstance(n_components, int) and n_components < 1:
            raise ValidationError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.whiten = bool(whiten)

    def _fit(self, X: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < _EPS] = 1.0
        self._std = std
        Z = (X - self._mean) / self._std
        n_feats = X.shape[1]
        if isinstance(self.n_components, float):
            k = max(1, int(round(self.n_components * n_feats)))
        else:
            k = min(self.n_components, n_feats)
        k = min(k, min(Z.shape))
        U, s, Vt = np.linalg.svd(Z, full_matrices=False)
        self._components = Vt[:k]
        self._singular = np.maximum(s[:k], _EPS)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mean) / self._std
        proj = Z @ self._components.T
        if self.whiten:
            proj = proj / self._singular
        return proj


SCALER_REGISTRY: dict[str, type[BaseScaler]] = {
    cls.name: cls
    for cls in (
        IdentityScaler,
        StandardScaler,
        MinMaxScaler,
        RobustScaler,
        MaxAbsScaler,
        NormalizerScaler,
        QuantileScaler,
        PowerScaler,
        PCAScaler,
    )
}


def available_scalers() -> list[str]:
    """Sorted list of scaler family names."""
    return sorted(SCALER_REGISTRY)


def get_scaler(name: str, **params) -> BaseScaler:
    """Instantiate a scaler family by name."""
    try:
        cls = SCALER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown scaler {name!r}; available: {available_scalers()}"
        ) from None
    return cls(**params)


def scaler_search_space() -> list[tuple[str, dict]]:
    """Enumerate the concrete scaler configurations ModelRace searches.

    Returns (family_name, params) pairs — 62 configurations, mirroring the
    paper's "60 different feature scaling options".
    """
    space: list[tuple[str, dict]] = [("identity", {})]
    space += [
        ("standard", {"with_mean": m, "with_std": s})
        for m in (True, False)
        for s in (True, False)
        if m or s
    ]
    space += [
        ("minmax", {"feature_range": r})
        for r in ((0.0, 1.0), (-1.0, 1.0), (0.0, 0.5), (-0.5, 0.5))
    ]
    space += [
        ("robust", {"quantile_range": q})
        for q in ((25.0, 75.0), (10.0, 90.0), (5.0, 95.0), (30.0, 70.0))
    ]
    space += [("maxabs", {})]
    space += [("normalizer", {"norm": n}) for n in ("l1", "l2", "max")]
    space += [
        ("quantile", {"n_quantiles": n, "output": o})
        for n in (16, 32, 64, 128)
        for o in ("uniform", "normal")
    ]
    space += [("power", {"method": m}) for m in ("log", "sqrt")]
    space += [
        ("pca", {"n_components": c, "whiten": w})
        for c in (0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.8, 0.9, 0.95, 1.0)
        for w in (True, False)
    ]
    # 1 + 3 + 4 + 4 + 1 + 3 + 8 + 2 + 20 = 46; widen quantile + minmax.
    space += [
        ("minmax", {"feature_range": r})
        for r in ((0.0, 2.0), (-2.0, 2.0), (0.25, 0.75), (-1.0, 0.0))
    ]
    space += [
        ("quantile", {"n_quantiles": n, "output": o})
        for n in (8, 24, 48, 96, 192, 256)
        for o in ("uniform", "normal")
    ]
    return space
