"""Worker shards: shared-memory engine transport + resilient dispatch.

A :class:`ShardPool` owns N workers that each serve micro-batches
against the *same* fitted engine.  Two backends:

``process``
    Real OS processes.  The engine is **published once** into shared
    memory (:class:`SharedEngine`): the exported JSON document (minus
    the training matrix) lands in one ``uint8`` segment and the training
    feature matrix in one ``float64`` segment, via the existing
    :class:`repro.parallel.shm.SharedArray` transport.  Workers attach
    both segments at startup — the matrix view is zero-copy — and refit
    the (cheap) pipelines locally.  After startup, the only per-batch
    traffic is the tiny request payload and the result rows; the engine
    itself is never pickled per request, which the E2E test asserts via
    the :class:`~repro.observability.resources.AccountingRegistry`
    ``shared_memory`` counters.  Large batches additionally ship their
    values through a per-batch shared segment (the
    :meth:`~repro.timeseries.batch.SeriesBank.share`-style concat
    transport) instead of the queue pickle.

``inline``
    In-process execution against the parent engine — the fallback when
    shared memory is unavailable, the target of crash demotion, and the
    deterministic backend the test harness uses.

Resilience: every batch failure (worker crash, hang past the timeout,
engine-level error) records a failure on the pool's
:class:`~repro.resilience.breaker.CircuitBreaker` and the batch is
**resubmitted** to the next healthy shard — a request is never silently
dropped.  A crashed process shard is demoted to an inline runner on the
parent engine (the PR-4 process→thread demotion, one level up), with the
demotion logged and counted.  When every shard's circuit is open the
pool raises :class:`~repro.exceptions.AllShardsQuarantinedError` and the
daemon sheds the batch with typed 503 responses.

Chaos hooks: workers evaluate a
:class:`~repro.resilience.FaultInjector` at the ``serving.shard`` site
once per batch (target ``shard-<id>``, token ``("batch", seq)``), so
seeded kill/hang plans reproduce crash and timeout handling exactly.
"""

from __future__ import annotations

import json
import queue as queue_mod
import threading
import time

import numpy as np

from repro.exceptions import (
    AllShardsQuarantinedError,
    ServingError,
    ShardsExhaustedError,
    ValidationError,
    WorkerCrashError,
)
from repro.observability import get_logger, get_metrics
from repro.observability.resources import get_accounting
from repro.observability.slo import QuantileSketch
from repro.parallel.shm import (
    SharedArray,
    attach_cached,
    clear_attach_cache,
    shm_available,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.stats import tick
from repro.serving.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_OK,
    RepairRequest,
)
from repro.timeseries.series import TimeSeries

_log = get_logger(__name__)

#: Fault-injection site evaluated once per batch inside each shard.
FAULT_SITE = "serving.shard"

#: Batches whose values total at least this many bytes ride in a
#: per-batch shared-memory segment instead of the queue pickle.
SHM_BATCH_MIN_BYTES = 16384


# ---------------------------------------------------------------------------
# Shared engine transport
# ---------------------------------------------------------------------------
class SharedEngine:
    """A fitted engine published once into shared-memory segments.

    ``publish`` strips the training feature matrix out of the exported
    JSON document and stores the document bytes and the matrix in two
    :class:`SharedArray` segments.  The picklable :attr:`handle` (two
    ``(name, shape, dtype)`` tuples, ~100 bytes) is all a worker needs;
    :func:`attach_shared_engine` rebuilds the engine there with the
    matrix as a zero-copy view into the segment.

    The publisher owns both segments and must call :meth:`release` when
    the shard fleet is gone (the pool does this in ``stop()``).
    """

    def __init__(self, doc_segment: SharedArray, x_segment: SharedArray):
        self._doc = doc_segment
        self._x = x_segment

    @classmethod
    def publish(cls, engine) -> "SharedEngine":
        from repro.core.serialization import _json_default, export_engine

        document = export_engine(engine)
        X = np.ascontiguousarray(
            np.asarray(document.pop("training_features"), dtype=float)
        )
        payload = json.dumps(document, default=_json_default).encode("utf-8")
        doc_segment = SharedArray.create(
            np.frombuffer(payload, dtype=np.uint8)
        )
        x_segment = SharedArray.create(X)
        return cls(doc_segment, x_segment)

    @property
    def handle(self) -> dict:
        return {"document": self._doc.handle, "train_x": self._x.handle}

    @property
    def nbytes(self) -> int:
        return int(
            self._doc.array.nbytes + self._x.array.nbytes
            if self._doc.array is not None and self._x.array is not None
            else 0
        )

    def release(self) -> None:
        """Unlink both segments (idempotent, owner side)."""
        for segment in (self._doc, self._x):
            segment.unlink()
            segment.close()


def attach_shared_engine(handle: dict):
    """Rebuild a servable engine from a :attr:`SharedEngine.handle`.

    The training matrix stays a view into the shared segment
    (``import_engine``'s ``np.asarray`` on a contiguous float64 view is
    a no-copy passthrough); only the pipelines are refitted locally.
    """
    from repro.core.serialization import import_engine

    doc_view = attach_cached(tuple(handle["document"])).array
    document = json.loads(doc_view.tobytes().decode("utf-8"))
    document["training_features"] = attach_cached(
        tuple(handle["train_x"])
    ).array
    return import_engine(document)


# ---------------------------------------------------------------------------
# Batch execution (shared by every backend and the library-parity tests)
# ---------------------------------------------------------------------------
def serve_payload(engine, payload: list[tuple]) -> list[dict]:
    """Serve one batch payload against a fitted engine.

    ``payload`` rows are ``(request_id, values, mode, name)``.  Returns
    one plain result dict per row, aligned with the input:
    ``{"id", "status", "algorithm", "ranking", "confidence",
    "degraded", "values"?, "error"?}``.  Per-row validation failures
    become 400 rows without failing the batch; engine-level failures
    propagate (the pool treats them as shard failures and resubmits).
    """
    results: list[dict | None] = [None] * len(payload)
    series_list: list[TimeSeries] = []
    indices: list[int] = []
    for i, (request_id, values, mode, name) in enumerate(payload):
        try:
            arr = np.asarray(values, dtype=float)
            if not np.isfinite(arr).any():
                raise ValidationError("series has no observed values")
            series = TimeSeries(arr, name=name or "series")
        except (ValidationError, ValueError, TypeError) as exc:
            results[i] = {
                "id": request_id,
                "status": STATUS_BAD_REQUEST,
                "error": f"invalid series: {exc}",
            }
            continue
        series_list.append(series)
        indices.append(i)
    if series_list:
        recommendations = engine.recommend_many(series_list)
        repair_positions = [
            j for j, i in enumerate(indices) if payload[i][2] == "repair"
        ]
        repaired: dict[int, TimeSeries] = {}
        if repair_positions:
            fixed = engine.repair_many(
                [series_list[j] for j in repair_positions],
                [recommendations[j] for j in repair_positions],
            )
            repaired = dict(zip(repair_positions, fixed))
        for j, i in enumerate(indices):
            rec = recommendations[j]
            row = {
                "id": payload[i][0],
                "status": STATUS_OK,
                "algorithm": rec.algorithm,
                "ranking": list(rec.ranking),
                "confidence": float(
                    rec.probabilities.get(rec.algorithm, 0.0)
                ),
                "degraded": bool(rec.degraded),
            }
            if j in repaired:
                row["values"] = np.asarray(repaired[j].values, dtype=float)
            results[i] = row
    return results


def _pack_payload(payload: list[tuple], *, min_shm_bytes: int):
    """Queue body for a batch: inline rows, or a shared-values segment.

    Large batches concatenate every row's values into one float64
    segment (offsets travel with the metadata) so the queue pickle
    carries only ids — the per-request analogue of
    :meth:`SeriesBank.share`.  Returns ``(body, segment)``; the caller
    unlinks ``segment`` (if any) once the batch resolves.
    """
    total = sum(int(np.asarray(v).size) for _, v, _, _ in payload)
    if total * 8 < min_shm_bytes or not shm_available():
        return ("inline", payload), None
    flat = np.empty(total, dtype=float)
    meta = []
    cursor = 0
    for request_id, values, mode, name in payload:
        arr = np.asarray(values, dtype=float).ravel()
        flat[cursor : cursor + arr.size] = arr
        meta.append((request_id, mode, name, cursor, cursor + arr.size))
        cursor += arr.size
    segment = SharedArray.create(flat)
    return ("shm", segment.handle, meta), segment


def _unpack_payload(body) -> list[tuple]:
    """Worker-side inverse of :func:`_pack_payload` (views, no copies)."""
    kind = body[0]
    if kind == "inline":
        return body[1]
    _, handle, meta = body
    flat = attach_cached(tuple(handle)).array
    return [
        (request_id, flat[start:stop], mode, name)
        for request_id, mode, name, start, stop in meta
    ]


class _ShardBatchError(ServingError):
    """A worker reported an engine-level failure for a whole batch."""


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------
def _shard_worker_main(shard_id, engine_handle, req_q, resp_q, injector):
    """Process-shard entry point: attach the engine, serve batches."""
    engine = attach_shared_engine(engine_handle)
    while True:
        message = req_q.get()
        if message is None or message[0] == "stop":
            break
        _, batch_id, body = message
        start = time.perf_counter()
        try:
            if injector is not None:
                injector.check(
                    FAULT_SITE, f"shard-{shard_id}", token=("batch", batch_id)
                )
            results = serve_payload(engine, _unpack_payload(body))
        except BaseException as exc:  # ship the failure, keep serving
            try:
                resp_q.put(
                    (
                        batch_id,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - start,
                    )
                )
            except Exception:  # pragma: no cover - queue already broken
                break
            continue
        resp_q.put((batch_id, "ok", results, time.perf_counter() - start))
    clear_attach_cache()


class _ProcessRunner:
    """One worker process fed through a request/response queue pair."""

    backend = "process"

    def __init__(self, shard_id: int, engine_handle: dict, injector=None):
        import multiprocessing as mp

        self.shard_id = int(shard_id)
        ctx = mp.get_context()
        self._req_q = ctx.Queue()
        self._resp_q = ctx.Queue()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(shard_id, engine_handle, self._req_q, self._resp_q, injector),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._seq = 0

    def start(self) -> None:
        self._proc.start()

    def run(self, payload: list[tuple], timeout_s: float):
        """Serve one batch; returns ``(results, elapsed_s)``.

        Raises :class:`WorkerCrashError` when the worker dies or hangs
        past ``timeout_s`` and :class:`_ShardBatchError` when it reports
        an engine-level failure.  Responses from abandoned (timed-out)
        batches are recognised by id and discarded.
        """
        self._seq += 1
        batch_id = self._seq
        body, segment = _pack_payload(
            payload, min_shm_bytes=SHM_BATCH_MIN_BYTES
        )
        try:
            self._req_q.put(("batch", batch_id, body))
            deadline = time.monotonic() + timeout_s
            while True:
                remaining = deadline - time.monotonic()
                try:
                    message = self._resp_q.get(
                        timeout=min(0.2, max(0.01, remaining))
                    )
                except queue_mod.Empty:
                    if not self._proc.is_alive():
                        tick("worker_crashes")
                        raise WorkerCrashError(
                            f"shard {self.shard_id} worker died "
                            f"(exit code {self._proc.exitcode})"
                        ) from None
                    if remaining <= 0:
                        raise WorkerCrashError(
                            f"shard {self.shard_id} timed out after "
                            f"{timeout_s:.1f}s"
                        ) from None
                    continue
                got_id, kind, data, elapsed = message
                if got_id != batch_id:  # stale reply from a timed-out batch
                    continue
                if kind == "error":
                    raise _ShardBatchError(
                        f"shard {self.shard_id} batch failed: {data}"
                    )
                return data, float(elapsed)
        finally:
            if segment is not None:
                segment.unlink()
                segment.close()

    def stop(self, force: bool = False) -> None:
        if self._proc.is_alive() and not force:
            try:
                self._req_q.put(("stop", None, None))
                self._proc.join(timeout=2.0)
            except Exception:  # pragma: no cover - broken queue
                pass
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=2.0)
        for q in (self._req_q, self._resp_q):
            q.cancel_join_thread()
            q.close()


class _InlineRunner:
    """In-process shard: the shm-less fallback and the demotion target."""

    backend = "inline"

    def __init__(self, shard_id: int, engine, injector=None):
        self.shard_id = int(shard_id)
        self._engine = engine
        self._injector = injector
        self._seq = 0

    def start(self) -> None:  # symmetry with the process runner
        pass

    def run(self, payload: list[tuple], timeout_s: float):
        self._seq += 1
        start = time.perf_counter()
        if self._injector is not None:
            # ``kill`` degrades to WorkerCrashError in the parent process
            # (see FaultInjector); the pool handles both identically.
            self._injector.check(
                FAULT_SITE, f"shard-{self.shard_id}", token=("batch", self._seq)
            )
        results = serve_payload(self._engine, payload)
        return results, time.perf_counter() - start

    def stop(self, force: bool = False) -> None:
        pass


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------
class Shard:
    """Parent-side view of one shard: runner + health + latency sketch."""

    def __init__(self, shard_id: int, runner):
        self.shard_id = int(shard_id)
        self.runner = runner
        #: Per-shard per-series service-latency sketch; the daemon folds
        #: these with :meth:`QuantileSketch.merge` into its fleet view.
        self.sketch = QuantileSketch(256)
        self.busy = threading.Lock()
        self.n_batches = 0
        self.n_series = 0
        self.n_failures = 0
        self.demoted = False

    @property
    def backend(self) -> str:
        return self.runner.backend

    def card(self, breaker: CircuitBreaker) -> dict:
        summary = self.sketch.summary()
        return {
            "backend": self.backend,
            "demoted": self.demoted,
            "quarantined": breaker.is_open(self.shard_id),
            "batches": self.n_batches,
            "series": self.n_series,
            "failures": self.n_failures,
            "p50_s": summary["p50"],
            "p99_s": summary["p99"],
        }


class ShardPool:
    """N engine shards with breaker-gated dispatch and crash demotion.

    Parameters
    ----------
    engine:
        The fitted parent engine (used directly by inline shards and by
        crash-demoted runners; published once to shared memory for the
        process backend).
    n_shards:
        Worker count.
    backend:
        ``"process"`` / ``"inline"`` / ``"auto"`` (process when shared
        memory is available).
    breaker:
        Admission breaker keyed by shard id (default: threshold 2,
        half-open after 30s).
    injector:
        Optional :class:`FaultInjector` evaluated per batch inside each
        shard (chaos tests).
    timeout_s:
        Wall-clock budget per batch on one shard; a hang past this is
        treated as a crash (the batch is resubmitted elsewhere).
    """

    def __init__(
        self,
        engine,
        n_shards: int = 2,
        *,
        backend: str = "auto",
        breaker: CircuitBreaker | None = None,
        injector=None,
        timeout_s: float = 30.0,
    ):
        if n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        if backend not in ("auto", "process", "inline"):
            raise ValidationError(
                f"backend must be auto/process/inline, got {backend!r}"
            )
        if backend == "auto":
            backend = "process" if shm_available() else "inline"
        elif backend == "process" and not shm_available():
            _log.warning(
                "shared memory unavailable; falling back to inline shards"
            )
            backend = "inline"
        self.engine = engine
        self.n_shards = int(n_shards)
        self.backend = backend
        self.breaker = breaker or CircuitBreaker(
            threshold=2, reset_after=30.0, name="serving-shards"
        )
        self.injector = injector
        self.timeout_s = float(timeout_s)
        self._shards: list[Shard] = []
        self._export: SharedEngine | None = None
        self._lock = threading.Lock()
        self._rr = 0
        self.n_resubmissions = 0
        self.n_demotions = 0
        self.started = False

    # ------------------------------------------------------------------
    def start(self) -> "ShardPool":
        if self.started:
            return self
        if self.backend == "process":
            self._export = SharedEngine.publish(self.engine)
            handle = self._export.handle
            runners = [
                _ProcessRunner(i, handle, self.injector)
                for i in range(self.n_shards)
            ]
        else:
            runners = [
                _InlineRunner(i, self.engine, self.injector)
                for i in range(self.n_shards)
            ]
        self._shards = [Shard(i, r) for i, r in enumerate(runners)]
        for shard in self._shards:
            shard.runner.start()
        self.started = True
        return self

    def stop(self) -> None:
        if not self.started:
            return
        for shard in self._shards:
            shard.runner.stop()
        if self._export is not None:
            self._export.release()
            self._export = None
        self.started = False

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _acquire(self) -> Shard | None:
        """Next healthy shard, round-robin, preferring a free one."""
        with self._lock:
            order = self._shards[self._rr:] + self._shards[: self._rr]
            self._rr = (self._rr + 1) % max(1, len(self._shards))
        healthy = [
            s for s in order if not self.breaker.is_open(s.shard_id)
        ]
        if not healthy:
            return None
        for shard in healthy:
            if shard.busy.acquire(blocking=False):
                return shard
        shard = healthy[0]
        shard.busy.acquire()
        return shard

    def _demote(self, shard: Shard) -> None:
        """Replace a crashed process runner with an inline one."""
        old = shard.runner
        shard.runner = _InlineRunner(shard.shard_id, self.engine)
        shard.demoted = True
        self.n_demotions += 1
        tick("backend_demotions")
        get_metrics().counter(
            "repro_serving_shard_demotions_total",
            "Process shards demoted to inline after a crash",
        ).inc()
        _log.warning(
            "shard %d demoted to inline backend after worker crash",
            shard.shard_id,
        )
        # A fresh in-process runner deserves a clean circuit.
        self.breaker.record_success(shard.shard_id)
        try:
            old.stop(force=True)
        except Exception:  # pragma: no cover - already-dead process
            pass

    def _on_failure(self, shard: Shard, exc: Exception) -> None:
        shard.n_failures += 1
        self.n_resubmissions += 1
        self.breaker.record_failure(
            shard.shard_id, error=f"{type(exc).__name__}: {exc}"
        )
        get_metrics().counter(
            "repro_serving_shard_failures_total",
            "Shard batch failures (crash/hang/error)",
            labels={"shard": str(shard.shard_id)},
        ).inc()
        _log.warning(
            "shard %d failed a batch (%s: %s); resubmitting",
            shard.shard_id,
            type(exc).__name__,
            exc,
        )
        if (
            isinstance(exc, WorkerCrashError)
            and shard.runner.backend == "process"
        ):
            self._demote(shard)

    def run_batch(self, requests: list[RepairRequest]):
        """Serve one batch; returns ``(results, shard_id, elapsed_s)``.

        Resubmits across healthy shards on failure; raises
        :class:`AllShardsQuarantinedError` (shed) when no healthy shard
        remains and :class:`ShardsExhaustedError` (terminal error) when
        the retry budget is spent.
        """
        if not self.started:
            raise ServingError("shard pool is not started")
        payload = [
            (r.id, np.asarray(r.values, dtype=float), r.mode, r.name)
            for r in requests
        ]
        get_accounting().record_kernel(
            "serving_batch",
            bytes_moved=sum(int(v.nbytes) for _, v, _, _ in payload),
            chunks=len(payload),
        )
        last_error = None
        max_attempts = max(2, 2 * len(self._shards))
        for _ in range(max_attempts):
            shard = self._acquire()
            if shard is None:
                raise AllShardsQuarantinedError(
                    f"all {len(self._shards)} shards quarantined"
                    + (f" (last error: {last_error})" if last_error else "")
                )
            try:
                try:
                    results, elapsed = shard.runner.run(
                        payload, self.timeout_s
                    )
                finally:
                    shard.busy.release()
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self._on_failure(shard, exc)
                continue
            self.breaker.record_success(shard.shard_id)
            shard.n_batches += 1
            shard.n_series += len(payload)
            per_series = elapsed / max(1, len(payload))
            for _ in range(len(payload)):
                shard.sketch.update(per_series)
            return results, shard.shard_id, float(elapsed)
        raise ShardsExhaustedError(
            f"batch failed on every shard after {max_attempts} attempts "
            f"(last error: {last_error})"
        )

    # ------------------------------------------------------------------
    def merged_sketch(self) -> QuantileSketch:
        """Fold every shard's service-latency sketch into one fleet view."""
        merged = QuantileSketch(256)
        for shard in self._shards:
            merged.merge(shard.sketch)
        return merged

    def quarantined(self) -> list[int]:
        return [
            s.shard_id
            for s in self._shards
            if self.breaker.is_open(s.shard_id)
        ]

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "resubmissions": self.n_resubmissions,
            "demotions": self.n_demotions,
            "quarantined": self.quarantined(),
            "per_shard": {
                str(s.shard_id): s.card(self.breaker) for s in self._shards
            },
        }
