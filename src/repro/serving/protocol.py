"""Wire protocol of the serving daemon: JSON-lines repair requests.

One request or response per line, UTF-8 JSON, newline-delimited — the
simplest protocol that pipelines over a raw socket and diffs cleanly in
test fixtures.  Missing observations travel as ``null`` (strict JSON has
no NaN literal); floats round-trip exactly because Python's ``repr`` is
the shortest-exact form and ``json`` emits it verbatim, which is what
makes the daemon's responses byte-comparable to the library path.

Status codes follow the HTTP convention the rest of the stack speaks:

========  ==========================================================
``200``   served — ``algorithm``/``ranking`` (+ ``values`` for
          ``mode="repair"``) are populated
``400``   malformed request line (:class:`~repro.exceptions.ProtocolError`)
``500``   the batch failed on every shard (terminal server error)
``503``   shed — admission control or every shard quarantined; the
          typed backpressure signal, retry after ``retry_after_ms``
========  ==========================================================
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ProtocolError

STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_ERROR = 500
STATUS_SHED = 503

#: Request modes: ``recommend`` returns only the ranking, ``repair``
#: also imputes and returns the completed values.
MODES = ("recommend", "repair")


def _encode_values(values) -> list:
    """Float list with NaN encoded as ``null`` (strict JSON)."""
    out = []
    for v in np.asarray(values, dtype=float).ravel():
        out.append(None if math.isnan(v) else float(v))
    return out


def _decode_values(payload) -> np.ndarray:
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError(
            f"'values' must be a list, got {type(payload).__name__}"
        )
    try:
        return np.asarray(
            [math.nan if v is None else float(v) for v in payload],
            dtype=float,
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"non-numeric value in 'values': {exc}") from None


@dataclass(frozen=True)
class RepairRequest:
    """One repair request: a faulty series plus what to do with it."""

    id: str
    values: np.ndarray
    mode: str = "repair"
    name: str = "series"

    def __post_init__(self):
        if self.mode not in MODES:
            raise ProtocolError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ProtocolError("'values' must be a non-empty 1-D sequence")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    def as_dict(self) -> dict:
        return {
            "id": str(self.id),
            "mode": self.mode,
            "name": self.name,
            "values": _encode_values(self.values),
        }


@dataclass(frozen=True)
class RepairResponse:
    """One response line, correlated to its request by ``id``."""

    id: str
    status: int
    algorithm: str | None = None
    ranking: tuple[str, ...] = ()
    confidence: float | None = None
    degraded: bool = False
    values: np.ndarray | None = None
    error: str | None = None
    shard: int | None = None
    latency_s: float | None = None
    retry_after_ms: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        return self.status == STATUS_SHED

    # -- typed constructors ---------------------------------------------
    @classmethod
    def shed_response(
        cls, request_id: str, reason: str, *, retry_after_ms: int = 100
    ) -> "RepairResponse":
        """The typed 503: backpressure, not failure — retry later."""
        return cls(
            id=str(request_id),
            status=STATUS_SHED,
            error=reason,
            retry_after_ms=int(retry_after_ms),
        )

    @classmethod
    def error_response(
        cls, request_id: str, message: str, *, status: int = STATUS_ERROR
    ) -> "RepairResponse":
        return cls(id=str(request_id), status=int(status), error=message)

    def as_dict(self) -> dict:
        doc: dict = {"id": str(self.id), "status": int(self.status)}
        if self.status == STATUS_OK:
            doc["algorithm"] = self.algorithm
            doc["ranking"] = list(self.ranking)
            doc["confidence"] = self.confidence
            doc["degraded"] = bool(self.degraded)
            if self.values is not None:
                doc["values"] = _encode_values(self.values)
        else:
            doc["error"] = self.error
            if self.retry_after_ms is not None:
                doc["retry_after_ms"] = int(self.retry_after_ms)
        if self.shard is not None:
            doc["shard"] = int(self.shard)
        if self.latency_s is not None:
            doc["latency_s"] = float(self.latency_s)
        if self.extra:
            doc.update(self.extra)
        return doc


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
def encode_request(request: RepairRequest) -> bytes:
    """One request as a JSON line (no trailing newline)."""
    return json.dumps(request.as_dict(), separators=(",", ":")).encode("utf-8")


def decode_request(line: bytes | str) -> RepairRequest:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    if "id" not in doc:
        raise ProtocolError("request is missing 'id'")
    if "values" not in doc:
        raise ProtocolError("request is missing 'values'")
    return RepairRequest(
        id=str(doc["id"]),
        values=_decode_values(doc["values"]),
        mode=str(doc.get("mode", "repair")),
        name=str(doc.get("name", "series")),
    )


def encode_response(response: RepairResponse) -> bytes:
    """One response as a JSON line (no trailing newline)."""
    return json.dumps(
        response.as_dict(), separators=(",", ":")
    ).encode("utf-8")


def decode_response(line: bytes | str) -> RepairResponse:
    """Parse one response line (client side of the codec)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty response line")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or "id" not in doc or "status" not in doc:
        raise ProtocolError("response must be a JSON object with id/status")
    values = doc.get("values")
    known = {
        "id", "status", "algorithm", "ranking", "confidence", "degraded",
        "values", "error", "shard", "latency_s", "retry_after_ms",
    }
    return RepairResponse(
        id=str(doc["id"]),
        status=int(doc["status"]),
        algorithm=doc.get("algorithm"),
        ranking=tuple(doc.get("ranking", ())),
        confidence=doc.get("confidence"),
        degraded=bool(doc.get("degraded", False)),
        values=None if values is None else _decode_values(values),
        error=doc.get("error"),
        shard=doc.get("shard"),
        latency_s=doc.get("latency_s"),
        retry_after_ms=doc.get("retry_after_ms"),
        extra={k: v for k, v in doc.items() if k not in known},
    )
