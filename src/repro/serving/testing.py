"""Deterministic serving test harness: in-process client + seeded load.

The archetype of this subsystem is *testability*: everything the daemon
does over a socket must be reproducible in-process with no I/O, no
sleeps and no real clock.  Two pieces:

:class:`ServingTestClient`
    Submits directly to a :class:`ServingDaemon` (no sockets) and
    resolves futures synchronously.  With ``via_wire=True`` every
    request and response additionally round-trips through the JSON-lines
    codec, so protocol encoding is exercised by the same assertions that
    check repair results.

:class:`LoadGenerator`
    A seeded request factory shared by the unit tests, the chaos tests,
    ``benchmarks/test_perf_serving.py`` and the CI serving lane
    (``repro serve --selfcheck``).  Request *i* under seed *s* is
    identical everywhere — series family, noise, and gap placement all
    derive from ``(s, i)`` — which is what makes the daemon-vs-library
    byte-identity check meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.serving.protocol import (
    RepairRequest,
    RepairResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


class ServingTestClient:
    """Socket-free client for a running :class:`ServingDaemon`."""

    def __init__(self, daemon, *, via_wire: bool = False):
        self.daemon = daemon
        self.via_wire = bool(via_wire)

    def _outbound(self, request: RepairRequest) -> RepairRequest:
        if not self.via_wire:
            return request
        return decode_request(encode_request(request))

    def _inbound(self, response: RepairResponse) -> RepairResponse:
        if not self.via_wire:
            return response
        return decode_response(encode_response(response))

    def request(
        self,
        values,
        *,
        mode: str = "repair",
        request_id: str | None = None,
        name: str = "series",
        timeout: float = 60.0,
    ) -> RepairResponse:
        """Submit one request and block for its response."""
        request = RepairRequest(
            id=request_id if request_id is not None else "r0",
            values=np.asarray(values, dtype=float),
            mode=mode,
            name=name,
        )
        return self.send(request, timeout=timeout)

    def send(
        self, request: RepairRequest, *, timeout: float = 60.0
    ) -> RepairResponse:
        future = self.daemon.submit(self._outbound(request))
        return self._inbound(future.result(timeout=timeout))

    def send_many(
        self, requests, *, timeout: float = 120.0
    ) -> list[RepairResponse]:
        """Submit all requests up-front, then collect responses in order.

        Submitting before collecting is what exercises coalescing: the
        daemon sees a burst, not a lock-step sequence.
        """
        futures = [
            self.daemon.submit(self._outbound(r)) for r in requests
        ]
        return [self._inbound(f.result(timeout=timeout)) for f in futures]


class LoadGenerator:
    """Seeded repair-request factory (identical across harnesses).

    Parameters
    ----------
    seed:
        Master seed; request *i* uses ``default_rng((seed, i))`` so any
        subsequence can be regenerated independently.
    length:
        Series length (all requests share it so batches can ride the
        shared-memory concat transport).
    missing_fraction:
        Width of the contiguous gap as a fraction of the series.
    mode:
        ``"repair"`` (default) or ``"recommend"``.
    """

    #: Distinct generator families — enough spread that a fitted engine
    #: routes them to different imputers/clusters.
    FAMILIES = ("sine", "walk", "ar1")

    def __init__(
        self,
        seed: int = 0,
        *,
        length: int = 96,
        missing_fraction: float = 0.15,
        mode: str = "repair",
    ):
        self.seed = int(seed)
        self.length = int(length)
        self.missing_fraction = float(missing_fraction)
        self.mode = mode

    # -- one request ----------------------------------------------------
    def series(self, i: int) -> np.ndarray:
        """Deterministic faulty series #``i`` (NaN gap already applied)."""
        rng = np.random.default_rng((self.seed, int(i)))
        family = self.FAMILIES[int(i) % len(self.FAMILIES)]
        t = np.arange(self.length, dtype=float)
        if family == "sine":
            period = 8.0 + 8.0 * rng.random()
            values = np.sin(2 * np.pi * t / period) + 0.1 * rng.standard_normal(
                self.length
            )
        elif family == "walk":
            values = np.cumsum(0.3 * rng.standard_normal(self.length))
        else:  # ar1
            values = np.empty(self.length)
            values[0] = rng.standard_normal()
            noise = 0.2 * rng.standard_normal(self.length)
            for j in range(1, self.length):
                values[j] = 0.85 * values[j - 1] + noise[j]
        gap = max(1, int(self.length * self.missing_fraction))
        # Keep the first and last observation so every imputer has
        # anchors; the gap start is seeded, not fixed.
        start = 1 + int(rng.integers(0, max(1, self.length - gap - 1)))
        values[start : start + gap] = np.nan
        return values

    def request(self, i: int) -> RepairRequest:
        return RepairRequest(
            id=f"req-{self.seed}-{int(i)}",
            values=self.series(i),
            mode=self.mode,
            name=f"load-{int(i)}",
        )

    def requests(self, n: int, *, start: int = 0) -> list[RepairRequest]:
        return [self.request(i) for i in range(start, start + int(n))]

    # -- arrival process -------------------------------------------------
    def arrival_offsets(
        self, n: int, *, rate_hz: float = 2000.0, burstiness: float = 0.0
    ) -> np.ndarray:
        """Seconds-from-start arrival times for an ``n``-request run.

        ``burstiness=0`` is a uniform arrival spacing; higher values mix
        in exponential jitter (still fully seeded).  Benchmarks replay
        these offsets against a real clock; property tests feed them to
        a fake clock.
        """
        # Distinct stream from the per-request seeds (i is always >= 0).
        rng = np.random.default_rng((self.seed, 0x0A221))
        spacing = 1.0 / float(rate_hz)
        gaps = np.full(int(n), spacing)
        if burstiness > 0:
            jitter = rng.exponential(spacing, size=int(n))
            gaps = (1 - burstiness) * gaps + burstiness * jitter
        offsets = np.cumsum(gaps)
        return offsets - offsets[0]
