"""Micro-batch coalescing: the request-to-batch state machine.

The daemon's dispatcher owns one :class:`MicroBatcher`.  Requests are
``offer``-ed as they arrive; a batch is released either the moment it
reaches ``max_batch`` items (the throughput bound) or when the *oldest*
pending item has waited ``max_delay_s`` (the latency bound).  The
coalescing invariant tested property-style in
``tests/test_serving_batching.py``:

    no item sits in the batcher longer than ``max_delay_s`` past its
    arrival before being released (the driver then adds at most one
    batch service time before the response resolves).

The batcher is deliberately a *pure, synchronous* state machine: it
never sleeps, spawns threads, or reads the wall clock on its own — the
caller passes ``now`` (or injects ``clock``).  That is what makes the
coalescing behaviour exactly testable with a fake clock, and it keeps
the concurrency surface of the daemon in exactly one place (the
dispatcher loop).
"""

from __future__ import annotations

import time

from repro.exceptions import ValidationError


class MicroBatcher:
    """Coalesce items into batches under a size/latency budget.

    Parameters
    ----------
    max_batch:
        Release a batch as soon as it holds this many items
        (``1`` disables coalescing — every offer releases immediately).
    max_delay_s:
        Maximum time the oldest pending item may wait before the partial
        batch is released (``0`` releases on the next :meth:`poll`).
    clock:
        Monotonic-seconds callable used when the caller passes no
        ``now``; inject a fake for deterministic tests.

    Not thread-safe by itself: the daemon calls it only from the
    dispatcher thread (arrivals cross over via the intake queue).
    """

    def __init__(
        self,
        max_batch: int = 16,
        max_delay_s: float = 0.005,
        *,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValidationError("max_delay_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.clock = clock
        self._pending: list = []
        self._deadline: float | None = None
        #: Lifetime counters (dispatcher telemetry).
        self.n_items = 0
        self.n_batches = 0
        self.n_full = 0  # released by the size bound
        self.n_timed = 0  # released by the delay bound

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def next_deadline(self) -> float | None:
        """Monotonic time the pending partial batch must ship by."""
        return self._deadline

    def _take(self) -> list:
        batch = self._pending
        self._pending = []
        self._deadline = None
        self.n_batches += 1
        return batch

    def offer(self, item, now: float | None = None) -> list | None:
        """Add one item; returns a full batch when the size bound trips."""
        if now is None:
            now = float(self.clock())
        if not self._pending:
            self._deadline = now + self.max_delay_s
        self._pending.append(item)
        self.n_items += 1
        if len(self._pending) >= self.max_batch:
            self.n_full += 1
            return self._take()
        return None

    def poll(self, now: float | None = None) -> list | None:
        """Release the pending batch if its delay budget has elapsed."""
        if not self._pending:
            return None
        if now is None:
            now = float(self.clock())
        if now + 1e-12 >= self._deadline:
            self.n_timed += 1
            return self._take()
        return None

    def flush(self) -> list | None:
        """Unconditionally release whatever is pending (shutdown path)."""
        if not self._pending:
            return None
        self.n_timed += 1
        return self._take()

    def stats(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_delay_s": self.max_delay_s,
            "items": self.n_items,
            "batches": self.n_batches,
            "full_batches": self.n_full,
            "timed_batches": self.n_timed,
            "pending": len(self._pending),
            "mean_batch": (
                self.n_items / self.n_batches if self.n_batches else 0.0
            ),
        }
