"""repro.serving: the sharded repair-serving daemon.

Layers, bottom up:

- :mod:`repro.serving.protocol` — JSON-lines wire codec + typed
  request/response objects (200/400/500/503).
- :mod:`repro.serving.batching` — the pure micro-batch coalescing state
  machine (size bound + latency bound, injectable clock).
- :mod:`repro.serving.shards` — shared-memory engine publication and
  the breaker-gated :class:`ShardPool` (resubmission, crash demotion).
- :mod:`repro.serving.daemon` — the :class:`ServingDaemon` core and the
  asyncio :class:`SocketServer` front-end (``repro serve``).
- :mod:`repro.serving.testing` — the deterministic harness: in-process
  :class:`ServingTestClient` + seeded :class:`LoadGenerator`.
"""

from repro.serving.batching import MicroBatcher
from repro.serving.daemon import ServingDaemon, SocketServer
from repro.serving.protocol import (
    MODES,
    STATUS_BAD_REQUEST,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    RepairRequest,
    RepairResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serving.shards import (
    SharedEngine,
    ShardPool,
    attach_shared_engine,
    serve_payload,
)
from repro.serving.testing import LoadGenerator, ServingTestClient

__all__ = [
    "MODES",
    "STATUS_BAD_REQUEST",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "LoadGenerator",
    "MicroBatcher",
    "RepairRequest",
    "RepairResponse",
    "ServingDaemon",
    "ServingTestClient",
    "ShardPool",
    "SharedEngine",
    "SocketServer",
    "attach_shared_engine",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "serve_payload",
]
