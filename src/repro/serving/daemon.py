"""The serving daemon: intake → micro-batches → shards → responses.

Concurrency layout (exactly one lock-free hand-off per request):

- :meth:`ServingDaemon.submit` is thread-safe and non-blocking: it
  applies admission control (typed 503 shed past ``max_pending``) and
  appends the request to the intake queue with a
  :class:`concurrent.futures.Future` the caller awaits.
- One **dispatcher thread** drains the intake into the
  :class:`~repro.serving.batching.MicroBatcher` and launches released
  batches onto a small executor (one slot per shard), so shards serve
  concurrently while coalescing stays single-threaded and deterministic.
- Each batch runs on the :class:`~repro.serving.shards.ShardPool`
  (breaker-gated, resubmitted on crash) and resolves its futures with
  :class:`~repro.serving.protocol.RepairResponse` objects.

The asyncio socket front-end (:class:`SocketServer`) is a thin adapter:
one task per request line, ``await``-ing the submit future — all
batching/backpressure logic lives in the synchronous core, which is what
the deterministic test harness (:mod:`repro.serving.testing`) drives
directly without sockets.

Telemetry: per-request latency and per-series service latency feed a
daemon-level :class:`~repro.observability.slo.SloTracker` (burn-rate
alerts) and the per-shard sketches fold with
:meth:`QuantileSketch.merge` into the fleet view surfaced by
:meth:`ServingDaemon.health` — a full
:class:`~repro.observability.serving.HealthSnapshot`, so ``repro top``,
``to_prometheus()`` and the artifact exporters work unchanged.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor

from repro.exceptions import (
    AllShardsQuarantinedError,
    OverloadedError,
    ProtocolError,
    ServingError,
    ValidationError,
)
from repro.observability import get_logger, get_metrics
from repro.observability.resources import get_accounting
from repro.observability.slo import QuantileSketch, SloTracker
from repro.serving.batching import MicroBatcher
from repro.serving.protocol import (
    STATUS_OK,
    RepairRequest,
    RepairResponse,
    decode_request,
    encode_response,
)
from repro.serving.shards import ShardPool

_log = get_logger(__name__)


class _Entry:
    """One in-flight request: the request, its future, its arrival time."""

    __slots__ = ("request", "future", "arrived")

    def __init__(self, request: RepairRequest, future: Future, arrived: float):
        self.request = request
        self.future = future
        self.arrived = arrived


class ServingDaemon:
    """Long-lived sharded repair service around one fitted engine.

    Parameters
    ----------
    engine:
        A fitted :class:`~repro.core.adarts.ADarts` engine.
    n_shards:
        Worker shard count (see :class:`ShardPool`).
    shard_backend:
        ``"auto"`` / ``"process"`` / ``"inline"``.
    max_batch / max_delay_s:
        Micro-batching budget (size bound / latency bound).
    max_pending:
        Admission limit on in-flight requests; beyond it ``submit``
        resolves immediately with a typed 503 shed response.
    breaker / injector / timeout_s:
        Forwarded to the :class:`ShardPool`.
    slo_policies:
        Optional :class:`SloPolicy` list for the daemon-level tracker.
    clock:
        Monotonic clock for the batcher (inject a fake in tests).
    """

    def __init__(
        self,
        engine,
        *,
        n_shards: int = 2,
        shard_backend: str = "auto",
        max_batch: int = 16,
        max_delay_s: float = 0.005,
        max_pending: int = 1024,
        breaker=None,
        injector=None,
        timeout_s: float = 30.0,
        slo_policies=None,
        clock=time.monotonic,
    ):
        if max_pending < 1:
            raise ValidationError("max_pending must be >= 1")
        self.engine = engine
        self.clock = clock
        self.max_pending = int(max_pending)
        self.pool = ShardPool(
            engine,
            n_shards,
            backend=shard_backend,
            breaker=breaker,
            injector=injector,
            timeout_s=timeout_s,
        )
        self.batcher = MicroBatcher(max_batch, max_delay_s, clock=clock)
        self.slo = SloTracker(slo_policies, clock=clock)
        #: Whole-request latency (arrival -> response) across the daemon.
        self.request_sketch = QuantileSketch(512)
        self.confidence_sketch = QuantileSketch(256)
        self._intake: deque[_Entry] = deque()
        self._cond = threading.Condition()
        self._in_flight = 0
        self._dispatcher: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stopping = False
        self.started = False
        self._started_at = 0.0
        # Lifetime counters (all mutated under ``_cond``'s lock or from
        # batch workers via ``_count``).
        self.n_submitted = 0
        self.n_served = 0
        self.n_shed = 0
        self.n_errors = 0
        self.recommendation_mix: dict[str, int] = {}
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingDaemon":
        if self.started:
            return self
        # Shard processes fork before any daemon thread exists.
        self.pool.start()
        self._stopping = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool.n_shards,
            thread_name_prefix="repro-serve-batch",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._started_at = time.monotonic()
        self.started = True
        _log.info(
            "serving daemon up: %d %s shard(s), max_batch=%d, "
            "max_delay=%.1fms, max_pending=%d",
            self.pool.n_shards,
            self.pool.backend,
            self.batcher.max_batch,
            self.batcher.max_delay_s * 1000,
            self.max_pending,
        )
        return self

    def stop(self) -> None:
        if not self.started:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=30.0)
        self._executor.shutdown(wait=True)
        self.pool.stop()
        self.started = False

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def uptime(self) -> float:
        return time.monotonic() - self._started_at if self.started else 0.0

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved."""
        return self._in_flight

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: RepairRequest) -> Future:
        """Admit one request; returns a Future of :class:`RepairResponse`.

        Never blocks and never raises for load reasons: past
        ``max_pending`` (or while stopping) the future resolves
        immediately with a typed 503 shed response.
        """
        if not isinstance(request, RepairRequest):
            raise ProtocolError(
                f"submit() takes a RepairRequest, got {type(request).__name__}"
            )
        future: Future = Future()
        with self._cond:
            self.n_submitted += 1
            if not self.started or self._stopping:
                self.n_shed += 1
                future.set_result(
                    RepairResponse.shed_response(
                        request.id, "daemon is not accepting requests"
                    )
                )
                return future
            if self._in_flight >= self.max_pending:
                self.n_shed += 1
                get_metrics().counter(
                    "repro_serving_shed_total",
                    "Requests shed by admission control",
                    labels={"reason": "max_pending"},
                ).inc()
                future.set_result(
                    RepairResponse.shed_response(
                        request.id,
                        f"daemon overloaded ({self._in_flight} pending)",
                    )
                )
                return future
            self._in_flight += 1
            self._intake.append(
                _Entry(request, future, float(self.clock()))
            )
            self._cond.notify()
        return future

    def submit_many(self, requests) -> list[Future]:
        return [self.submit(r) for r in requests]

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._intake and not self._stopping:
                    deadline = self.batcher.next_deadline
                    if deadline is None:
                        self._cond.wait()
                    else:
                        wait = max(0.0, deadline - float(self.clock()))
                        self._cond.wait(wait if wait > 0 else 0.0005)
                        break  # re-check the batcher's delay budget
                if self._stopping and not self._intake and not len(
                    self.batcher
                ):
                    break
                entries = list(self._intake)
                self._intake.clear()
            now = float(self.clock())
            for entry in entries:
                released = self.batcher.offer(entry, now)
                if released:
                    self._launch(released)
            released = self.batcher.poll(float(self.clock()))
            if released:
                self._launch(released)
            if self._stopping:
                released = self.batcher.flush()
                if released:
                    self._launch(released)
        # Drain: anything still queued at shutdown resolves as shed.
        released = self.batcher.flush()
        if released:
            self._launch(released)

    def _launch(self, entries: list[_Entry]) -> None:
        self._executor.submit(self._serve_batch, entries)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _resolve(self, entry: _Entry, response: RepairResponse) -> None:
        with self._cond:
            self._in_flight -= 1
        if not entry.future.set_running_or_notify_cancel():
            return
        entry.future.set_result(response)

    def _count(self, response: RepairResponse) -> None:
        with self._count_lock:
            if response.ok:
                self.n_served += 1
                if response.algorithm:
                    self.recommendation_mix[response.algorithm] = (
                        self.recommendation_mix.get(response.algorithm, 0) + 1
                    )
            elif response.shed:
                self.n_shed += 1
            else:
                self.n_errors += 1

    def _serve_batch(self, entries: list[_Entry]) -> None:
        requests = [e.request for e in entries]
        try:
            results, shard_id, elapsed = self.pool.run_batch(requests)
        except AllShardsQuarantinedError as exc:
            self._finish_rejected(
                entries,
                RepairResponse.shed_response,
                str(exc),
                reason="quarantine",
            )
            return
        except OverloadedError as exc:  # pragma: no cover - future-proofing
            self._finish_rejected(
                entries, RepairResponse.shed_response, str(exc),
                reason="overload",
            )
            return
        except ServingError as exc:
            self._finish_rejected(
                entries, RepairResponse.error_response, str(exc),
                reason="exhausted",
            )
            return
        except Exception as exc:  # defensive: never leave futures hanging
            _log.exception("batch failed unexpectedly")
            self._finish_rejected(
                entries, RepairResponse.error_response,
                f"{type(exc).__name__}: {exc}", reason="internal",
            )
            return

        now = float(self.clock())
        per_series = elapsed / max(1, len(entries))
        for entry, row in zip(entries, results):
            status = int(row.get("status", STATUS_OK))
            if status == STATUS_OK:
                response = RepairResponse(
                    id=str(row["id"]),
                    status=STATUS_OK,
                    algorithm=row.get("algorithm"),
                    ranking=tuple(row.get("ranking", ())),
                    confidence=row.get("confidence"),
                    degraded=bool(row.get("degraded", False)),
                    values=row.get("values"),
                    shard=shard_id,
                    latency_s=now - entry.arrived,
                )
                if response.confidence is not None:
                    self.confidence_sketch.update(float(response.confidence))
            else:
                response = RepairResponse.error_response(
                    str(row.get("id", entry.request.id)),
                    str(row.get("error", "bad request")),
                    status=status,
                )
            self._count(response)
            self.request_sketch.update(now - entry.arrived)
            self.slo.record_latency(
                per_series,
                error=status != STATUS_OK,
                slices=(
                    f"shard:{shard_id}",
                    f"imputer:{row.get('algorithm') or 'none'}",
                ),
                check=False,
            )
            self._resolve(entry, response)
        self.slo.evaluate()

    def _finish_rejected(
        self, entries, factory, message: str, *, reason: str
    ) -> None:
        get_metrics().counter(
            "repro_serving_shed_total",
            "Requests shed by admission control",
            labels={"reason": reason},
        ).inc(len(entries))
        for entry in entries:
            response = factory(entry.request.id, message)
            self._count(response)
            self.slo.record_latency(0.0, error=True, check=False)
            self._resolve(entry, response)
        self.slo.evaluate()

    # ------------------------------------------------------------------
    # Health / introspection
    # ------------------------------------------------------------------
    def health(self):
        """Daemon health as a :class:`HealthSnapshot` document.

        Reuses the monitor's snapshot type directly — same JSON shape,
        same Prometheus rendering, same ``repro top`` panels — with the
        daemon's sharding story in ``scorecards["per_shard"]`` and the
        per-shard latency sketches folded into ``series_latency``.
        """
        import datetime as _dt

        from repro.observability.metrics import build_info
        from repro.observability.serving import HealthSnapshot
        from repro.parallel.executor import engine_stats
        from repro.resilience.stats import resilience_stats
        from repro.timeseries.batch import bank_cache_stats

        pool_stats = self.pool.stats()
        merged = self.pool.merged_sketch()
        series_latency = merged.summary()
        latency = self.request_sketch.summary()
        with self._count_lock:
            mix = dict(sorted(self.recommendation_mix.items()))
            n_served = self.n_served
            n_shed = self.n_shed
            n_errors = self.n_errors
        total_mix = sum(mix.values()) or 1
        return HealthSnapshot(
            generated_at=_dt.datetime.now(_dt.timezone.utc).isoformat(),
            uptime_s=self.uptime,
            n_requests=self.n_submitted,
            n_series=n_served,
            latency=latency,
            series_latency=series_latency,
            confidence=self.confidence_sketch.summary(),
            disagreement=QuantileSketch(32).summary(),
            recommendation_mix={
                "counts": mix,
                "fractions": {
                    k: v / total_mix for k, v in mix.items()
                },
            },
            drift=None,
            caches={"series_bank": bank_cache_stats()},
            backends=engine_stats(),
            alerts={
                "slo_alerts": self.slo.n_alerts,
                "shed_requests": n_shed,
                "error_requests": n_errors,
                "quarantined_shards": len(pool_stats["quarantined"]),
            },
            resilience={
                "degraded_requests": 0,
                "fallback_requests": 0,
                "quarantined_members": [
                    f"shard-{i}" for i in pool_stats["quarantined"]
                ],
                "process": resilience_stats(),
                "resubmissions": pool_stats["resubmissions"],
                "demotions": pool_stats["demotions"],
            },
            scorecards={
                "per_shard": pool_stats["per_shard"],
                "batching": self.batcher.stats(),
            },
            slo=self.slo.status(),
            resources=get_accounting().snapshot(),
            build=build_info(),
        )

    def stats(self) -> dict:
        """Compact counters for tests and the CLI summary line."""
        with self._count_lock:
            return {
                "submitted": self.n_submitted,
                "served": self.n_served,
                "shed": self.n_shed,
                "errors": self.n_errors,
                "pending": self._in_flight,
                "batching": self.batcher.stats(),
                "pool": self.pool.stats(),
            }


# ---------------------------------------------------------------------------
# asyncio socket front-end
# ---------------------------------------------------------------------------
class SocketServer:
    """JSON-lines front-end for a :class:`ServingDaemon`.

    Runs its own event loop on a background thread so the synchronous
    daemon (and its tests) never touch asyncio.  One task per request
    line — responses are written as each resolves, so a slow repair
    never head-of-line-blocks a pipelined client; ordering is by ``id``
    correlation, as the protocol specifies.
    """

    def __init__(
        self,
        daemon: ServingDaemon,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        path: str | None = None,
    ):
        self.daemon = daemon
        self.host = host
        self.port = int(port)
        self.path = path
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.address = None  # (host, port) or unix path once bound

    # -- connection handling -------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        conn_task = asyncio.current_task()
        self._conn_tasks.add(conn_task)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def answer(line: bytes) -> None:
            try:
                request = decode_request(line)
            except ProtocolError as exc:
                response = RepairResponse.error_response(
                    "", str(exc), status=400
                )
            else:
                response = await asyncio.wrap_future(
                    self.daemon.submit(request)
                )
            async with write_lock:
                writer.write(encode_response(response) + b"\n")
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(answer(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(conn_task)
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            if self.path is not None:
                server = await asyncio.start_unix_server(
                    self._handle_client, path=self.path
                )
                self.address = self.path
            else:
                server = await asyncio.start_server(
                    self._handle_client, self.host, self.port
                )
                sock = server.sockets[0]
                self.address = sock.getsockname()[:2]
                self.port = self.address[1]
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        async with server:
            await self._stop_event.wait()
            # Stop accepting, then cancel connections still reading.
            server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        except BaseException:
            if self._startup_error is None:  # pragma: no cover
                _log.exception("socket server crashed")
        finally:
            self._loop.close()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SocketServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-socket", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServingError(
                f"socket server failed to start: {self._startup_error}"
            )
        _log.info("serving on %s", self.address)
        return self

    def stop(self) -> None:
        if self._loop is None or self._stop_event is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:  # loop already closed
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "SocketServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
