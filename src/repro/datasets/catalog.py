"""Corpus catalog: multiple datasets per category, deterministic by seed.

The paper uses 107 datasets grouped into six categories.  We model the same
structure at laptop scale: each category contributes several datasets whose
generator parameters (series count, length, seed) vary, so intra-category
diversity exists while category traits are preserved.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import CATEGORY_GENERATORS
from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeriesDataset

CATEGORIES: tuple[str, ...] = (
    "Power",
    "Water",
    "Motion",
    "Climate",
    "Lightning",
    "Medical",
)

# Per-category dataset variants: (suffix, n_series multiplier, length delta).
_VARIANTS: tuple[tuple[str, float, int], ...] = (
    ("a", 1.0, 0),
    ("b", 0.8, 32),
    ("c", 1.2, -24),
)


def load_category(
    category: str,
    n_series: int = 24,
    n_datasets: int = 3,
    base_seed: int = 7,
) -> list[TimeSeriesDataset]:
    """Return ``n_datasets`` deterministic datasets for one category.

    Parameters
    ----------
    category:
        One of :data:`CATEGORIES`.
    n_series:
        Baseline series count per dataset (variants scale it slightly).
    n_datasets:
        How many dataset variants to produce (max ``len(_VARIANTS)``).
    base_seed:
        Root seed; each (category, variant) pair derives its own seed.
    """
    if category not in CATEGORY_GENERATORS:
        raise ValidationError(
            f"unknown category {category!r}; expected one of {sorted(CATEGORY_GENERATORS)}"
        )
    if not 1 <= n_datasets <= len(_VARIANTS):
        raise ValidationError(
            f"n_datasets must be in [1, {len(_VARIANTS)}], got {n_datasets}"
        )
    generator = CATEGORY_GENERATORS[category]
    cat_index = CATEGORIES.index(category)
    datasets = []
    for k, (suffix, mult, length_delta) in enumerate(_VARIANTS[:n_datasets]):
        seed = base_seed + 1000 * cat_index + k
        count = max(4, int(round(n_series * mult)))
        # Each generator has its own default length; perturb it via a probe.
        probe = generator(n_series=1, random_state=0)
        length = max(64, len(probe[0]) + length_delta)
        datasets.append(
            generator(
                n_series=count,
                length=length,
                random_state=seed,
                name=f"{category.lower()}_{suffix}",
            )
        )
    return datasets


def load_corpus(
    n_series: int = 24, n_datasets: int = 3, base_seed: int = 7
) -> dict[str, list[TimeSeriesDataset]]:
    """Load the full corpus: every category, ``n_datasets`` datasets each."""
    return {
        category: load_category(
            category, n_series=n_series, n_datasets=n_datasets, base_seed=base_seed
        )
        for category in CATEGORIES
    }


def corpus_summary(corpus: dict[str, list[TimeSeriesDataset]]) -> dict[str, dict]:
    """Summarize a corpus: per-category dataset/series counts and lengths."""
    summary: dict[str, dict] = {}
    for category, datasets in corpus.items():
        lengths = np.concatenate([ds.lengths for ds in datasets])
        summary[category] = {
            "n_datasets": len(datasets),
            "n_series": int(sum(len(ds) for ds in datasets)),
            "min_length": int(lengths.min()),
            "max_length": int(lengths.max()),
        }
    return summary
