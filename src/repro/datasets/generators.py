"""Synthetic generators for the six dataset categories of Section VII-A.

The paper's corpus (67K series from TSC/UCR/UCI/ImputeBench/BAFU) is not
available offline, so each generator below encodes the category traits the
paper documents.  Those traits — not data provenance — determine which
imputation algorithm wins and which features discriminate, so the
category-level result shapes are preserved:

* **Power** — periodic (daily load curve), some series shifted in time.
* **Water** — synchronized trends plus sporadic anomalies (spikes).
* **Motion** — erratic fluctuations with varying frequency.
* **Climate** — periodic with very high cross-correlation.
* **Lightning** — mixed correlation (high/low, positive/negative) with
  partial trend similarity; bursty high-rate events.
* **Medical** — high-frequency quasi-periodic (ECG-like) with aligned and
  shifted trends.

Every generator is deterministic given ``random_state`` and returns a
:class:`TimeSeriesDataset` of equal-length series.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.utils.rng import ensure_rng


def _dataset(matrix: np.ndarray, name: str, category: str) -> TimeSeriesDataset:
    return TimeSeriesDataset.from_matrix(
        matrix, name=name, category=category, prefix=f"{name}"
    )


def generate_power(
    n_series: int = 40, length: int = 288, random_state=None, name: str = "power"
) -> TimeSeriesDataset:
    """Household electricity consumption: periodic, some series time-shifted."""
    rng = ensure_rng(random_state)
    t = np.arange(length)
    daily = 2.0 * np.pi * t / 96.0  # 96 intervals per "day" at 15-min cadence
    rows = np.empty((n_series, length))
    for i in range(n_series):
        shift = rng.integers(0, 48) if rng.random() < 0.5 else 0
        base = rng.uniform(0.5, 3.0)
        amp = rng.uniform(0.5, 2.0)
        morning = amp * np.clip(np.sin(daily + shift * 2 * np.pi / 96.0), 0, None)
        evening = 0.6 * amp * np.clip(
            np.sin(2 * daily + shift * 2 * np.pi / 96.0 + 1.0), 0, None
        )
        noise = rng.normal(0.0, 0.08 * amp, size=length)
        rows[i] = base + morning + evening + noise
    return _dataset(rows, name, "Power")


def generate_water(
    n_series: int = 40, length: int = 300, random_state=None, name: str = "water"
) -> TimeSeriesDataset:
    """Water quality: synchronized trends plus sporadic anomalies."""
    rng = ensure_rng(random_state)
    t = np.linspace(0.0, 1.0, length)
    # One shared slow trend drives synchronization across the dataset.
    shared_trend = 0.8 * np.sin(2 * np.pi * 1.5 * t) + 1.2 * t
    rows = np.empty((n_series, length))
    for i in range(n_series):
        gain = rng.uniform(0.6, 1.4)
        offset = rng.uniform(-0.5, 0.5)
        noise = rng.normal(0.0, 0.12, size=length)
        row = gain * shared_trend + offset + noise
        # Sporadic anomalies: a few large spikes at random positions.
        n_spikes = rng.integers(2, 6)
        spike_pos = rng.choice(length, size=n_spikes, replace=False)
        row[spike_pos] += rng.choice([-1.0, 1.0], size=n_spikes) * rng.uniform(
            2.0, 5.0, size=n_spikes
        )
        rows[i] = row
    return _dataset(rows, name, "Water")


def generate_motion(
    n_series: int = 40, length: int = 256, random_state=None, name: str = "motion"
) -> TimeSeriesDataset:
    """Motion sensors: erratic fluctuations and varying frequency."""
    rng = ensure_rng(random_state)
    t = np.linspace(0.0, 1.0, length)
    rows = np.empty((n_series, length))
    for i in range(n_series):
        # Chirp: frequency sweeps over the recording (varying frequency).
        f0 = rng.uniform(2.0, 6.0)
        f1 = rng.uniform(8.0, 20.0)
        chirp = np.sin(2 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t**2))
        # Erratic component: integrated white noise (random walk).
        walk = np.cumsum(rng.normal(0.0, 0.15, size=length))
        walk -= np.linspace(walk[0], walk[-1], length)  # detrend ends
        rows[i] = rng.uniform(0.5, 1.5) * chirp + walk + rng.normal(
            0.0, 0.2, size=length
        )
    return _dataset(rows, name, "Motion")


def generate_climate(
    n_series: int = 40, length: int = 365, random_state=None, name: str = "climate"
) -> TimeSeriesDataset:
    """Weather phenomena: periodic and very highly correlated."""
    rng = ensure_rng(random_state)
    t = np.arange(length)
    seasonal = np.sin(2 * np.pi * t / 365.0 - np.pi / 2)
    weekly = 0.15 * np.sin(2 * np.pi * t / 7.0)
    rows = np.empty((n_series, length))
    for i in range(n_series):
        # Same seasonal signal everywhere; small gain/offset per "city".
        gain = rng.uniform(0.9, 1.1)
        offset = rng.uniform(-2.0, 2.0)
        rows[i] = 10.0 + 8.0 * gain * seasonal + weekly + offset + rng.normal(
            0.0, 0.3, size=length
        )
    return _dataset(rows, name, "Climate")


def generate_lightning(
    n_series: int = 40, length: int = 256, random_state=None, name: str = "lightning"
) -> TimeSeriesDataset:
    """Electromagnetic storm events: mixed correlation, partial trend similarity."""
    rng = ensure_rng(random_state)
    t = np.linspace(0.0, 1.0, length)
    # Two competing templates; series follow one, anti-follow it, or mix.
    template_a = np.exp(-((t - 0.3) ** 2) / 0.005) + 0.4 * np.exp(
        -((t - 0.7) ** 2) / 0.02
    )
    template_b = np.exp(-((t - 0.55) ** 2) / 0.01)
    rows = np.empty((n_series, length))
    for i in range(n_series):
        mode = rng.integers(0, 4)
        sign = -1.0 if mode == 1 else 1.0
        mix = rng.uniform(0.0, 1.0)
        base = sign * (mix * template_a + (1 - mix) * template_b)
        if mode == 3:
            base = rng.normal(0.0, 0.3, size=length)  # low-correlation member
        carrier = 0.3 * np.sin(2 * np.pi * rng.uniform(20, 40) * t)
        rows[i] = base * rng.uniform(1.0, 4.0) + carrier * np.abs(base) + rng.normal(
            0.0, 0.05, size=length
        )
    return _dataset(rows, name, "Lightning")


def generate_medical(
    n_series: int = 40, length: int = 300, random_state=None, name: str = "medical"
) -> TimeSeriesDataset:
    """ECG/hemodynamics: high-frequency quasi-periodic, aligned and shifted trends."""
    rng = ensure_rng(random_state)
    t = np.arange(length, dtype=float)
    rows = np.empty((n_series, length))
    for i in range(n_series):
        period = rng.integers(24, 32)  # heartbeat period in samples
        phase = rng.integers(0, period) if rng.random() < 0.4 else 0
        beat = np.zeros(length)
        pos = phase
        while pos < length:
            # Simplified QRS complex: sharp spike with small side lobes.
            for offset, amp in ((-2, -0.15), (-1, 0.3), (0, 1.0), (1, 0.25), (2, -0.2)):
                j = pos + offset
                if 0 <= j < length:
                    beat[j] += amp
            pos += period
        baseline = 0.2 * np.sin(2 * np.pi * t / 150.0)
        rows[i] = rng.uniform(0.8, 1.3) * beat + baseline + rng.normal(
            0.0, 0.03, size=length
        )
    return _dataset(rows, name, "Medical")


CATEGORY_GENERATORS = {
    "Power": generate_power,
    "Water": generate_water,
    "Motion": generate_motion,
    "Climate": generate_climate,
    "Lightning": generate_lightning,
    "Medical": generate_medical,
}
