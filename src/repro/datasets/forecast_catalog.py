"""Seven forecasting datasets for the downstream experiment (Fig. 12).

The paper evaluates downstream forecasting on seven datasets drawn from
sources including the Monash archive (ATM, Paris mobility, Weather, ...).
Offline we synthesize seven datasets whose names mirror Fig. 12 and whose
signal structure matches the described difficulty ordering: datasets with
complex features (Paris mobility, Weather) gain the most from choosing the
right imputation, simpler ones (ATM) the least.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeriesDataset
from repro.utils.rng import ensure_rng

FORECAST_DATASETS: tuple[str, ...] = (
    "atm",
    "electricity",
    "traffic",
    "tourism",
    "paris_mobility",
    "weather",
    "solar",
)


def _make(rows: np.ndarray, name: str) -> TimeSeriesDataset:
    return TimeSeriesDataset.from_matrix(rows, name=name, category="Forecast")


def load_forecast_dataset(
    name: str, n_series: int = 12, length: int = 240, random_state=None
) -> TimeSeriesDataset:
    """Generate one named forecasting dataset deterministically."""
    if name not in FORECAST_DATASETS:
        raise ValidationError(
            f"unknown forecast dataset {name!r}; expected one of {FORECAST_DATASETS}"
        )
    rng = ensure_rng(random_state if random_state is not None else hash(name) % 10000)
    t = np.arange(length, dtype=float)
    rows = np.empty((n_series, length))
    for i in range(n_series):
        if name == "atm":
            # Smooth weekly cash-demand cycle: easy for any imputation.
            rows[i] = (
                100
                + 20 * np.sin(2 * np.pi * t / 7.0 + rng.uniform(0, 0.3))
                + rng.normal(0, 2.0, length)
            )
        elif name == "electricity":
            rows[i] = (
                50
                + 15 * np.sin(2 * np.pi * t / 24.0)
                + 5 * np.sin(2 * np.pi * t / 168.0 + rng.uniform(0, 1))
                + rng.normal(0, 1.5, length)
            )
        elif name == "traffic":
            daily = np.clip(np.sin(2 * np.pi * t / 24.0), 0, None) ** 2
            rows[i] = 10 + 30 * daily + rng.normal(0, 1.0, length)
        elif name == "tourism":
            season = np.sin(2 * np.pi * t / 12.0 - 1.0)
            trend = 0.15 * t
            rows[i] = 40 + trend + 12 * season + rng.normal(0, 2.0, length)
        elif name == "paris_mobility":
            # Complex: shifting phase + regime change mid-series.
            phase = rng.uniform(0, np.pi)
            base = 20 + 10 * np.sin(2 * np.pi * t / 24.0 + phase)
            regime = np.where(t > length * 0.6, 8.0, 0.0)
            burst = np.zeros(length)
            for pos in rng.choice(length, size=5, replace=False):
                burst[pos] += rng.uniform(10, 25)
            rows[i] = base + regime + burst + rng.normal(0, 2.5, length)
        elif name == "weather":
            # Complex: two interacting periods plus heteroscedastic noise.
            season = 8 * np.sin(2 * np.pi * t / 120.0)
            daily = 3 * np.sin(2 * np.pi * t / 24.0 + rng.uniform(0, 2))
            noise = rng.normal(0, 1.0 + 0.8 * np.abs(np.sin(2 * np.pi * t / 60.0)))
            rows[i] = 15 + season + daily + noise
        else:  # solar
            daylight = np.clip(np.sin(2 * np.pi * t / 24.0), 0, None)
            clouds = np.clip(1 - 0.5 * rng.random(length), 0.2, 1.0)
            rows[i] = 50 * daylight * clouds + rng.normal(0, 0.5, length)
    return _make(rows, name)


def load_forecast_corpus(
    n_series: int = 12, length: int = 240, base_seed: int = 21
) -> dict[str, TimeSeriesDataset]:
    """Load all seven forecasting datasets keyed by name."""
    return {
        name: load_forecast_dataset(
            name, n_series=n_series, length=length, random_state=base_seed + i
        )
        for i, name in enumerate(FORECAST_DATASETS)
    }
