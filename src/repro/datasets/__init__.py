"""Synthetic dataset corpus standing in for the paper's 107-dataset archive."""

from repro.datasets.generators import (
    CATEGORY_GENERATORS,
    generate_power,
    generate_water,
    generate_motion,
    generate_climate,
    generate_lightning,
    generate_medical,
)
from repro.datasets.catalog import (
    CATEGORIES,
    load_category,
    load_corpus,
    corpus_summary,
)
from repro.datasets.forecast_catalog import (
    FORECAST_DATASETS,
    load_forecast_dataset,
    load_forecast_corpus,
)
from repro.datasets.splits import holdout_split, stratified_kfold, train_test_indices

__all__ = [
    "CATEGORY_GENERATORS",
    "generate_power",
    "generate_water",
    "generate_motion",
    "generate_climate",
    "generate_lightning",
    "generate_medical",
    "CATEGORIES",
    "load_category",
    "load_corpus",
    "corpus_summary",
    "FORECAST_DATASETS",
    "load_forecast_dataset",
    "load_forecast_corpus",
    "holdout_split",
    "stratified_kfold",
    "train_test_indices",
]
