"""Train/test splitting utilities: holdout and stratified k-fold.

ModelRace (Algorithm 1) evaluates pipelines on *stratified* k-folds so each
fold preserves the label distribution of the training set, and the experiment
section reports a 65/35 sample holdout per category.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


def train_test_indices(
    n: int, test_ratio: float = 0.35, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle ``range(n)`` and split into (train_idx, test_idx).

    Both sides are guaranteed non-empty for ``n >= 2``.
    """
    if n < 2:
        raise ValidationError(f"need at least 2 samples to split, got {n}")
    if not 0.0 < test_ratio < 1.0:
        raise ValidationError(f"test_ratio must be in (0, 1), got {test_ratio}")
    rng = ensure_rng(random_state)
    perm = rng.permutation(n)
    n_test = min(n - 1, max(1, int(round(test_ratio * n))))
    return perm[n_test:], perm[:n_test]


def holdout_split(
    X: np.ndarray,
    y: np.ndarray,
    test_ratio: float = 0.35,
    stratify: bool = True,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split features/labels into train and test partitions.

    When ``stratify`` is True, each class is split independently so the test
    set preserves class proportions (classes with a single sample go to the
    training side).

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    rng = ensure_rng(random_state)
    if not stratify:
        train_idx, test_idx = train_test_indices(
            X.shape[0], test_ratio=test_ratio, random_state=rng
        )
    else:
        train_parts: list[np.ndarray] = []
        test_parts: list[np.ndarray] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            if members.size == 1:
                train_parts.append(members)
                continue
            n_test = max(1, int(round(test_ratio * members.size)))
            n_test = min(n_test, members.size - 1)
            test_parts.append(members[:n_test])
            train_parts.append(members[n_test:])
        if not test_parts:
            raise ValidationError(
                "stratified split produced an empty test set; "
                "every class has a single sample"
            )
        train_idx = np.concatenate(train_parts)
        test_idx = np.concatenate(test_parts)
        rng.shuffle(train_idx)
        rng.shuffle(test_idx)
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def stratified_kfold(
    y: Sequence, n_splits: int = 3, random_state=None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class balanced folds.

    Classes smaller than ``n_splits`` are spread as evenly as possible; every
    fold is guaranteed a non-empty test side as long as ``len(y) >= n_splits``.
    """
    y = np.asarray(y)
    n = y.shape[0]
    if n_splits < 2:
        raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
    if n < n_splits:
        raise ValidationError(
            f"cannot make {n_splits} folds from {n} samples"
        )
    rng = ensure_rng(random_state)
    fold_of = np.empty(n, dtype=int)
    # Assign each class's members round-robin to folds after shuffling, with
    # a per-class random starting fold so small classes don't pile into fold 0.
    per_class: dict = defaultdict(list)
    for idx, label in enumerate(y):
        per_class[label].append(idx)
    for members in per_class.values():
        members = np.array(members)
        rng.shuffle(members)
        start = int(rng.integers(0, n_splits))
        for j, idx in enumerate(members):
            fold_of[idx] = (start + j) % n_splits
    for fold in range(n_splits):
        test_idx = np.flatnonzero(fold_of == fold)
        if test_idx.size == 0:
            continue
        train_idx = np.flatnonzero(fold_of != fold)
        yield train_idx, test_idx
